//! Parameterized synthetic corpus for the scale sweep: rows and schema
//! width scale **independently**.
//!
//! The NBA duplicate-up of [`crate::scale`] grows the *rows* axis but
//! keeps the Figure-5 schema fixed at eleven relations; nothing in the
//! corpus family exercises the per-table/per-column costs (join-graph
//! enumeration, feature selection, column statistics) at varying width.
//! This module closes that gap with a star schema whose shape is fully
//! parameterized and deterministic from a seed:
//!
//! * a `fact` table (`rows` rows) with a low-cardinality `grp` column —
//!   the workload query groups on it — and one foreign key per
//!   dimension;
//! * `tables` dimension tables, each with `columns` numeric context
//!   columns, a categorical label of `cardinality` distinct values, and
//!   `rows / fanout` keys (so `fanout` fact rows share one dimension
//!   row, like games sharing a season).
//!
//! Dimension keys live in disjoint ranges (`dim_i` keys start at
//! `(i+1)·10⁷`) so containment-based join discovery on a CSV round-trip
//! recovers exactly the declared joins and no accidental ones.
//!
//! A correlation is planted for mining: `grp = "g0"` fact rows draw
//! their dimension keys from the lower half of each key range and get a
//! higher `val`, so low-key context columns separate `g0` from the rest
//! and every scale point mines non-trivial patterns.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use cajade_graph::SchemaGraph;
use cajade_storage::{AttrKind, DataType, Database, ForeignKey, SchemaBuilder, StrId, Value};

use crate::GeneratedDb;

/// The workload query every synthetic corpus supports (two-point
/// questions compare `grp` values, e.g. `g0` vs `g1`).
pub const SYNTH_SQL: &str = "SELECT COUNT(*) AS n, grp FROM fact GROUP BY grp";

/// Number of distinct `fact.grp` groups (the query's GROUP BY output).
pub const GROUPS: usize = 4;

/// Key-range offset separating the dimension tables' id spaces.
const DIM_KEY_STRIDE: i64 = 10_000_000;

/// Shape of a synthetic corpus. Every field is independent; the
/// scale-sweep harness moves `rows` with the shape fixed (rows axis) and
/// `tables`/`columns` with the rows fixed (width axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SynthConfig {
    /// Fact-table rows (the rows axis).
    pub rows: usize,
    /// Dimension tables joined to the fact table (the width axis).
    pub tables: usize,
    /// Numeric context columns per dimension table (the width axis).
    pub columns: usize,
    /// Fact rows per dimension key: each dimension has
    /// `max(1, rows / fanout)` rows.
    pub fanout: usize,
    /// Distinct values of each dimension's categorical label column.
    pub cardinality: usize,
    /// RNG seed; equal configs generate byte-identical corpora.
    pub seed: u64,
}

impl SynthConfig {
    /// Base shape for tests and the sweep's origin point: 2 000 fact
    /// rows, 3 dimensions × 4 numeric columns, fan-out 8, 16 labels.
    pub fn small() -> Self {
        SynthConfig {
            rows: 2_000,
            tables: 3,
            columns: 4,
            fanout: 8,
            cardinality: 16,
            seed: 42,
        }
    }

    /// Same shape, different row count (the rows axis).
    pub fn with_rows(self, rows: usize) -> Self {
        SynthConfig { rows, ..self }
    }

    /// Same row count, different schema width (the tables/columns axis).
    pub fn with_width(self, tables: usize, columns: usize) -> Self {
        SynthConfig {
            tables,
            columns,
            ..self
        }
    }

    /// Total cells across all tables — the corpus-size proxy the
    /// scale-aware cache budgets key on.
    pub fn approx_cells(&self) -> usize {
        let dim_rows = (self.rows / self.fanout).max(1);
        let fact_cells = self.rows * (3 + self.tables);
        let dim_cells = self.tables * dim_rows * (2 + self.columns);
        fact_cells + dim_cells
    }
}

/// Generates the synthetic star corpus for `cfg`. Deterministic: the
/// same config (including seed) yields an identical database.
pub fn generate(cfg: &SynthConfig) -> GeneratedDb {
    assert!(cfg.tables >= 1, "need at least one dimension table");
    assert!(cfg.fanout >= 1, "fanout must be ≥ 1");
    assert!(cfg.cardinality >= 1, "cardinality must be ≥ 1");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut db = Database::new("synth");
    let dim_rows = (cfg.rows / cfg.fanout).max(1);

    // ---- Schemas -------------------------------------------------------
    let mut fact = SchemaBuilder::new("fact")
        .column_pk("fact_id", DataType::Int, AttrKind::Categorical)
        .column("grp", DataType::Str, AttrKind::Categorical)
        .column("val", DataType::Float, AttrKind::Numeric);
    for d in 0..cfg.tables {
        fact = fact.column(format!("dim{d}_id"), DataType::Int, AttrKind::Categorical);
    }
    db.create_table(fact.build()).expect("fresh database");
    for d in 0..cfg.tables {
        let mut dim = SchemaBuilder::new(format!("dim{d}"))
            .column_pk(format!("dim{d}_id"), DataType::Int, AttrKind::Categorical)
            .column(format!("label{d}"), DataType::Str, AttrKind::Categorical);
        for c in 0..cfg.columns {
            dim = dim.column(format!("num{d}_{c}"), DataType::Float, AttrKind::Numeric);
        }
        db.create_table(dim.build()).expect("unique table names");
    }

    // ---- Dimension rows ------------------------------------------------
    let labels: Vec<Vec<StrId>> = (0..cfg.tables)
        .map(|d| {
            (0..cfg.cardinality)
                .map(|v| db.intern(&format!("L{d}_{v}")))
                .collect()
        })
        .collect();
    for (d, dim_labels) in labels.iter().enumerate() {
        let base = (d as i64 + 1) * DIM_KEY_STRIDE;
        for k in 0..dim_rows {
            let mut row = Vec::with_capacity(2 + cfg.columns);
            row.push(Value::Int(base + k as i64));
            row.push(Value::Str(dim_labels[k % cfg.cardinality]));
            for c in 0..cfg.columns {
                // Low keys get low values: the planted correlation's
                // context side. `cardinality` bounds the distinct count.
                let bucket = (k * cfg.cardinality / dim_rows) as f64;
                let jitter: f64 = rng.gen_range(0.0..0.5);
                row.push(Value::Float(bucket * 10.0 + c as f64 + jitter.round()));
            }
            db.table_mut(&format!("dim{d}"))
                .unwrap()
                .push_row(row)
                .expect("schema matches");
        }
    }

    // ---- Fact rows -----------------------------------------------------
    let grp_ids: Vec<StrId> = (0..GROUPS).map(|g| db.intern(&format!("g{g}"))).collect();
    let low_half = (dim_rows / 2).max(1);
    for r in 0..cfg.rows {
        let g = r % GROUPS;
        let mut row = Vec::with_capacity(3 + cfg.tables);
        row.push(Value::Int(r as i64));
        row.push(Value::Str(grp_ids[g]));
        let val = if g == 0 {
            rng.gen_range(60.0..100.0)
        } else {
            rng.gen_range(0.0..70.0)
        };
        row.push(Value::Float(val.round()));
        for d in 0..cfg.tables {
            let base = (d as i64 + 1) * DIM_KEY_STRIDE;
            // g0 concentrates on the low-key (low-valued) dimension rows.
            let k = if g == 0 {
                rng.gen_range(0..low_half)
            } else {
                rng.gen_range(0..dim_rows)
            };
            row.push(Value::Int(base + k as i64));
        }
        db.table_mut("fact")
            .unwrap()
            .push_row(row)
            .expect("schema matches");
    }

    // ---- Joins ---------------------------------------------------------
    for d in 0..cfg.tables {
        db.add_foreign_key(ForeignKey {
            from_table: "fact".into(),
            from_cols: vec![format!("dim{d}_id")],
            to_table: format!("dim{d}"),
            to_cols: vec![format!("dim{d}_id")],
        })
        .expect("fk endpoints exist");
    }
    let schema_graph = SchemaGraph::from_foreign_keys(&db);
    GeneratedDb { db, schema_graph }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let a = generate(&SynthConfig::small());
        let b = generate(&SynthConfig::small());
        for (ta, tb) in a.db.tables().iter().zip(b.db.tables()) {
            assert_eq!(ta.num_rows(), tb.num_rows());
            for r in (0..ta.num_rows()).step_by(97) {
                assert_eq!(ta.row(r), tb.row(r), "{} row {r}", ta.name());
            }
        }
        let c = generate(&SynthConfig {
            seed: 43,
            ..SynthConfig::small()
        });
        // A different seed changes payload values (not the shape).
        assert_eq!(c.db.table("fact").unwrap().num_rows(), 2_000);
    }

    #[test]
    fn rows_and_width_scale_independently() {
        let base = SynthConfig::small();
        let tall = generate(&base.with_rows(4_000));
        assert_eq!(tall.db.table("fact").unwrap().num_rows(), 4_000);
        assert_eq!(tall.db.tables().len(), 1 + base.tables);

        let wide = generate(&base.with_width(6, 8));
        assert_eq!(wide.db.table("fact").unwrap().num_rows(), base.rows);
        assert_eq!(wide.db.tables().len(), 1 + 6);
        let dim0 = wide.db.table("dim0").unwrap();
        assert_eq!(dim0.schema().fields.len(), 2 + 8);
        assert_eq!(wide.schema_graph.edges().len(), 6);
    }

    #[test]
    fn dimension_keys_are_unique_and_disjoint_across_tables() {
        let g = generate(&SynthConfig::small());
        let mut seen = std::collections::HashSet::new();
        for d in 0..3 {
            let t = g.db.table(&format!("dim{d}")).unwrap();
            for r in 0..t.num_rows() {
                let id = t.value(r, 0).as_i64().unwrap();
                assert!(seen.insert(id), "duplicate key {id} in dim{d}");
                assert_eq!(
                    id / DIM_KEY_STRIDE,
                    d as i64 + 1,
                    "key {id} outside dim{d} range"
                );
            }
        }
    }

    #[test]
    fn every_fact_fk_resolves() {
        let cfg = SynthConfig::small();
        let g = generate(&cfg);
        let fact = g.db.table("fact").unwrap();
        let dim_rows = (cfg.rows / cfg.fanout).max(1) as i64;
        for r in 0..fact.num_rows() {
            for d in 0..cfg.tables {
                let id = fact.value(r, 3 + d).as_i64().unwrap();
                let base = (d as i64 + 1) * DIM_KEY_STRIDE;
                assert!(id >= base && id < base + dim_rows);
            }
        }
    }

    #[test]
    fn planted_correlation_separates_g0() {
        let g = generate(&SynthConfig::small());
        let fact = g.db.table("fact").unwrap();
        let g0 = g.db.pool().get("g0").unwrap();
        let (mut sum0, mut n0, mut sum_rest, mut n_rest) = (0.0, 0u32, 0.0, 0u32);
        for r in 0..fact.num_rows() {
            let v = fact.value(r, 2).as_f64().unwrap();
            if fact.value(r, 1) == Value::Str(g0) {
                sum0 += v;
                n0 += 1;
            } else {
                sum_rest += v;
                n_rest += 1;
            }
        }
        assert!(sum0 / n0 as f64 > sum_rest / n_rest as f64 + 20.0);
    }
}
