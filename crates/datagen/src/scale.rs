//! Dataset scaling (paper §5 "Datasets"): "for scaling up the dataset size
//! we duplicate rows appending identifiers to primary key columns and
//! other selected columns to ensure that the constraints of the schema are
//! not violated and the join result sizes are scaled too."
//!
//! [`duplicate_scale`] implements exactly that, generically: *identifier
//! columns* (primary-key members plus any column on either side of a
//! foreign key) are remapped per copy — integers by a global offset,
//! strings by a `§i` suffix — so each copy joins only with itself. Every
//! table and every join result grows by the integer factor.
//!
//! Down-scaling (factors < 1) regenerates at reduced size via the
//! generators' `scaled()` configs; the paper sampled the real data
//! instead, which is impossible to replicate exactly — regeneration
//! preserves distributions and stays perfectly reproducible.

use std::collections::HashSet;

use cajade_storage::{DataType, Database, Table, Value};

use crate::GeneratedDb;

/// Scales a generated database up by an integer `factor ≥ 1`.
pub fn duplicate_scale(gen: &GeneratedDb, factor: usize) -> GeneratedDb {
    assert!(factor >= 1, "duplicate_scale needs factor ≥ 1");
    if factor == 1 {
        return gen.clone();
    }
    let db = &gen.db;

    // Identifier columns per table: PK members + FK endpoints.
    let mut id_cols: Vec<HashSet<usize>> = db
        .tables()
        .iter()
        .map(|t| {
            t.schema()
                .fields
                .iter()
                .enumerate()
                .filter(|(_, f)| f.is_pk)
                .map(|(i, _)| i)
                .collect::<HashSet<usize>>()
        })
        .collect();
    for fk in db.foreign_keys() {
        for (tname, cols) in [(&fk.from_table, &fk.from_cols), (&fk.to_table, &fk.to_cols)] {
            let tidx = db
                .tables()
                .iter()
                .position(|t| t.name() == tname.as_str())
                .expect("fk table exists");
            let schema = db.tables()[tidx].schema();
            for c in cols {
                id_cols[tidx].insert(schema.field_index(c).expect("fk column exists"));
            }
        }
    }

    // Global integer offset: larger than any identifier value in any table.
    let mut max_id: i64 = 0;
    for (tidx, t) in db.tables().iter().enumerate() {
        for &c in &id_cols[tidx] {
            if t.schema().fields[c].dtype == DataType::Int {
                for r in 0..t.num_rows() {
                    if let Some(v) = t.value(r, c).as_i64() {
                        max_id = max_id.max(v);
                    }
                }
            }
        }
    }
    let stride = max_id + 1;

    let mut out = Database::new(format!("{}@x{}", db.name, factor));
    // Copy the pool lazily: new database interns as it goes; resolve
    // source strings through the original pool.
    for (tidx, t) in db.tables().iter().enumerate() {
        let mut nt = Table::with_capacity(t.schema().clone(), t.num_rows() * factor);
        for copy in 0..factor as i64 {
            for r in 0..t.num_rows() {
                let mut row = t.row(r).expect("in bounds");
                for (c, cell) in row.iter_mut().enumerate() {
                    let remap = id_cols[tidx].contains(&c) && copy > 0;
                    *cell = match (*cell, remap) {
                        (Value::Int(i), true) => Value::Int(i + copy * stride),
                        (Value::Str(s), _) => {
                            let base = db.resolve(s);
                            if remap {
                                Value::Str(out.intern(&format!("{base}\u{a7}{copy}")))
                            } else {
                                Value::Str(out.intern(base))
                            }
                        }
                        (v, _) => v,
                    };
                }
                nt.push_row(row).expect("schema unchanged");
            }
        }
        out.insert_table(nt).expect("unique names");
    }
    for fk in db.foreign_keys() {
        out.add_foreign_key(fk.clone()).expect("fk still valid");
    }

    GeneratedDb {
        db: out,
        schema_graph: gen.schema_graph.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nba::{self, NbaConfig};
    use cajade_query::{execute, parse_sql};

    fn base() -> GeneratedDb {
        nba::generate(NbaConfig {
            seasons: 3,
            games_per_team: 6,
            players_per_team: 4,
            rich_stats: false,
            seed: 3,
        })
    }

    #[test]
    fn factor_one_is_identity() {
        let g = base();
        let s = duplicate_scale(&g, 1);
        assert_eq!(s.db.total_rows(), g.db.total_rows());
    }

    #[test]
    fn tables_scale_linearly() {
        let g = base();
        let s = duplicate_scale(&g, 3);
        for t in g.db.tables() {
            let scaled = s.db.table(t.name()).unwrap();
            assert_eq!(scaled.num_rows(), t.num_rows() * 3, "table {}", t.name());
        }
    }

    #[test]
    fn join_results_scale_linearly() {
        let g = base();
        let s = duplicate_scale(&g, 2);
        let q = parse_sql(
            "SELECT COUNT(*) AS c, season_type FROM player_game_stats pgs, game g, season se \
             WHERE pgs.game_date = g.game_date AND pgs.home_id = g.home_id \
               AND se.season_id = g.season_id GROUP BY season_type",
        )
        .unwrap();
        let count = |db: &Database| -> i64 {
            let r = execute(db, &q).unwrap();
            (0..r.num_rows())
                .map(|i| {
                    r.table
                        .value(i, r.table.schema().field_index("c").unwrap())
                        .as_i64()
                        .unwrap()
                })
                .sum()
        };
        assert_eq!(count(&s.db), 2 * count(&g.db), "join cardinality scales");
    }

    #[test]
    fn copies_do_not_cross_join() {
        let g = base();
        let s = duplicate_scale(&g, 2);
        // Teams doubled; every game's winner still resolves to exactly one
        // team → the game–team join equals the game count.
        let q = parse_sql(
            "SELECT COUNT(*) AS c, season_id FROM game g, team t \
             WHERE g.winner_id = t.team_id GROUP BY season_id",
        )
        .unwrap();
        let r = execute(&s.db, &q).unwrap();
        let total: i64 = (0..r.num_rows())
            .map(|i| {
                r.table
                    .value(i, r.table.schema().field_index("c").unwrap())
                    .as_i64()
                    .unwrap()
            })
            .sum();
        assert_eq!(total as usize, s.db.table("game").unwrap().num_rows());
    }

    #[test]
    fn non_identifier_values_unchanged() {
        let g = base();
        let s = duplicate_scale(&g, 2);
        // Copy 2's team names carry the § marker only on identifier
        // columns; `team` (the name) is NOT an identifier...
        let teams = s.db.table("team").unwrap();
        let n = teams.num_rows() / 2;
        for r in 0..n {
            let orig = teams.value(r, 1);
            let copy = teams.value(r + n, 1);
            match (orig, copy) {
                (Value::Str(a), Value::Str(b)) => {
                    assert_eq!(s.db.resolve(a), s.db.resolve(b));
                }
                other => panic!("{other:?}"),
            }
        }
        // …while team_id (PK) is offset.
        assert_ne!(teams.value(0, 0), teams.value(n, 0));
    }

    #[test]
    fn story_preserved_per_copy() {
        let g = base();
        let s = duplicate_scale(&g, 2);
        // GSW win counts double (one GSW per copy, each with the same wins
        // — the group keys differ per copy only through ids, and
        // season_name is not an identifier so groups merge: wins double).
        let q = parse_sql(
            "SELECT COUNT(*) AS win, s.season_name \
             FROM team t, game g, season s \
             WHERE t.team_id = g.winner_id AND g.season_id = s.season_id AND t.team = 'GSW' \
             GROUP BY s.season_name",
        )
        .unwrap();
        let orig = execute(&g.db, &q).unwrap();
        let scaled = execute(&s.db, &q).unwrap();
        let win = |r: &cajade_query::QueryResult, db: &Database, season: &str| -> i64 {
            let row = r.find_row(db, &[("season_name", season)]).unwrap();
            r.table
                .value(row, r.table.schema().field_index("win").unwrap())
                .as_i64()
                .unwrap()
        };
        assert_eq!(
            win(&scaled, &s.db, "2009-10"),
            2 * win(&orig, &g.db, "2009-10")
        );
    }
}
