//! Name pools for the synthetic rosters. Story players (the ones the
//! paper's case studies reference) use their real names; filler players
//! get generated first/last combinations.

/// The 30 NBA team abbreviations.
pub const TEAMS: [&str; 30] = [
    "GSW", "CLE", "MIA", "CHI", "LAL", "BOS", "SAS", "HOU", "OKC", "TOR", "DAL", "DEN", "DET",
    "IND", "LAC", "MEM", "MIL", "MIN", "NOP", "NYK", "ORL", "PHI", "PHX", "POR", "SAC", "UTA",
    "WAS", "ATL", "BKN", "CHA",
];

const FIRST: [&str; 24] = [
    "James", "Michael", "Chris", "Anthony", "Kevin", "Marcus", "Tyler", "Jordan", "Devin", "Malik",
    "Darius", "Isaiah", "Caleb", "Jalen", "Trey", "Andre", "Victor", "Gary", "Luis", "Omar",
    "Paul", "Reggie", "Shawn", "Terry",
];

const LAST: [&str; 25] = [
    "Johnson", "Williams", "Brown", "Davis", "Miller", "Wilson", "Moore", "Taylor", "Anderson",
    "Thomas", "Jackson", "White", "Harris", "Martin", "Thompson", "Robinson", "Clark", "Lewis",
    "Lee", "Walker", "Hall", "Allen", "Young", "King", "Wright",
];

/// Deterministic filler-player name for roster slot `i` (globally unique
/// by suffixing a numeral when the pool recycles).
pub fn filler_player_name(i: usize) -> String {
    let f = FIRST[i % FIRST.len()];
    let l = LAST[(i / FIRST.len()) % LAST.len()];
    let round = i / (FIRST.len() * LAST.len());
    if round == 0 {
        format!("{f} {l}")
    } else {
        format!("{f} {l} {}", round + 1)
    }
}

/// Languages for MIMIC `patients_admit_info`.
pub const LANGUAGES: [&str; 5] = ["ENGL", "SPAN", "RUSS", "CANT", "PTUN"];

/// Religions for MIMIC.
pub const RELIGIONS: [&str; 6] = [
    "CATHOLIC",
    "PROTESTANT QUAKER",
    "JEWISH",
    "NOT SPECIFIED",
    "BUDDHIST",
    "MUSLIM",
];

/// Ethnicities (Fig. 16e's categories, simplified).
pub const ETHNICITIES: [&str; 8] = [
    "WHITE",
    "BLACK",
    "HISPANIC",
    "ASIAN",
    "OTHER",
    "UNKNOWN",
    "UNABLE TO OBTAIN",
    "DECLINED TO ANSWER",
];

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn teams_are_unique() {
        let set: HashSet<_> = TEAMS.iter().collect();
        assert_eq!(set.len(), 30);
    }

    #[test]
    fn filler_names_unique_for_thousand_players() {
        let names: HashSet<String> = (0..1000).map(filler_player_name).collect();
        assert_eq!(names.len(), 1000);
    }

    #[test]
    fn filler_names_deterministic() {
        assert_eq!(filler_player_name(3), filler_player_name(3));
    }
}
