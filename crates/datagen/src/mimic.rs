//! Synthetic MIMIC-III-shaped database (Figure-6 schema) with the planted
//! clinical correlations of the paper's Table-6 case study.
//!
//! MIMIC-III is access-restricted (data-use agreement + training), so this
//! generator is a documented substitution: same six relations, the same
//! categorical vocabularies, and the dependencies the explanations hinge
//! on — insurance ↔ age ↔ emergency ↔ death rate, diagnosis-chapter
//! death-rate differences, ICU length-of-stay ↔ hospital stay length,
//! ethnicity ↔ religion. Proportions follow the paper's result tables
//! (Fig. 15a / 16); absolute row counts scale with
//! [`MimicConfig::admissions`].

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use cajade_graph::SchemaGraph;
use cajade_storage::{AttrKind, DataType, Database, ForeignKey, SchemaBuilder, Value};

use crate::names::{ETHNICITIES, LANGUAGES, RELIGIONS};
use crate::util::{coin, exponential, normal_clamped, weighted_choice};
use crate::GeneratedDb;

/// Story constants for the MIMIC generator.
pub mod story {
    /// Insurance types with (share of admissions, target in-hospital death
    /// rate) — Fig. 15a / 16b.
    pub const INSURANCE: [(&str, f64, f64); 5] = [
        ("Medicare", 0.478, 0.138),
        ("Private", 0.383, 0.060),
        ("Medicaid", 0.098, 0.066),
        ("Government", 0.030, 0.050),
        ("Self Pay", 0.011, 0.160),
    ];

    /// Diagnosis chapters with (weight, death-rate multiplier) —
    /// chapter 2 (neoplasms) deadliest, 11/15 benign (Fig. 16a).
    pub const DIAG_CHAPTERS: [(&str, f64, f64); 19] = [
        ("1", 4.0, 1.55),
        ("2", 6.0, 1.60), // neoplasms
        ("3", 6.0, 1.00),
        ("4", 5.0, 1.15),
        ("5", 5.0, 0.65),
        ("6", 5.0, 1.05),
        ("7", 12.0, 1.00),
        ("8", 6.0, 1.45),
        ("9", 7.0, 1.15),
        ("10", 5.0, 1.20),
        ("11", 3.0, 0.10), // pregnancy: near-zero mortality
        ("12", 3.0, 1.10),
        ("13", 4.0, 0.75), // musculoskeletal: low mortality
        ("14", 2.0, 0.40),
        ("15", 3.0, 0.18),
        ("16", 5.0, 1.30),
        ("17", 6.0, 1.05),
        ("V", 8.0, 0.75),
        ("E", 5.0, 0.85),
    ];

    /// Procedure chapters (1..16), chapter 16 = "Miscellaneous Diagnostic
    /// and Therapeutic Procedures" (frequent for long ICU stays).
    pub const PROC_CHAPTERS: usize = 16;

    /// ICU length-of-stay groups (Fig. 16c).
    pub const LOS_GROUPS: [&str; 5] = ["0-1", "1-2", "2-4", "4-8", "x>8"];
}

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct MimicConfig {
    /// Number of hospital admissions (scale knob).
    pub admissions: usize,
    /// RNG seed.
    pub seed: u64,
}

impl MimicConfig {
    /// Minimal config for tests.
    pub fn tiny() -> Self {
        Self {
            admissions: 800,
            seed: 11,
        }
    }

    /// Paper-scale configuration (scale factor 1.0). Proportions match the
    /// paper; the absolute count is reduced from MIMIC-III's 59k to keep
    /// in-memory experiments brisk — scaling experiments use factors of
    /// this base.
    pub fn paper() -> Self {
        Self {
            admissions: 20_000,
            seed: 11,
        }
    }

    /// Scale-factor variant.
    pub fn scaled(sf: f64) -> Self {
        let mut c = Self::paper();
        c.admissions = ((c.admissions as f64 * sf).round() as usize).max(50);
        c
    }
}

/// Generates the synthetic MIMIC database + schema graph.
pub fn generate(cfg: MimicConfig) -> GeneratedDb {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut db = Database::new("mimic");
    create_schema(&mut db);

    // Pre-intern vocabularies.
    let ins_ids: Vec<_> = story::INSURANCE
        .iter()
        .map(|(n, _, _)| db.intern(n))
        .collect();
    let adm_types = ["EMERGENCY", "ELECTIVE", "URGENT", "NEWBORN"].map(|s| db.intern(s));
    let adm_locs = [
        "EMERGENCY ROOM ADMIT",
        "PHYS REFERRAL/NORMAL DELI",
        "TRANSFER FROM HOSP/EXTRAM",
        "CLINIC REFERRAL/PREMATURE",
    ]
    .map(|s| db.intern(s));
    let disch_locs =
        ["HOME", "SNF", "REHAB", "DEAD/EXPIRED", "HOME HEALTH CARE"].map(|s| db.intern(s));
    let maritals = ["MARRIED", "SINGLE", "WIDOWED", "DIVORCED"].map(|s| db.intern(s));
    let genders = ["M", "F"].map(|s| db.intern(s));
    let languages: Vec<_> = LANGUAGES.iter().map(|s| db.intern(s)).collect();
    let religions: Vec<_> = RELIGIONS.iter().map(|s| db.intern(s)).collect();
    let ethnicities: Vec<_> = ETHNICITIES.iter().map(|s| db.intern(s)).collect();
    let diag_chapters: Vec<_> = story::DIAG_CHAPTERS
        .iter()
        .map(|(n, _, _)| db.intern(n))
        .collect();
    let proc_chapters: Vec<_> = (1..=story::PROC_CHAPTERS)
        .map(|i| db.intern(&i.to_string()))
        .collect();
    let los_groups: Vec<_> = story::LOS_GROUPS.iter().map(|s| db.intern(s)).collect();
    let dbsources = ["carevue", "metavision"].map(|s| db.intern(s));
    let careunits = ["MICU", "SICU", "CCU", "CSRU", "TSICU"].map(|s| db.intern(s));

    // Patients: ~75% as many as admissions (repeat visitors).
    let num_patients = (cfg.admissions * 3 / 4).max(1);
    // Patient attributes chosen lazily at first admission; stored here.
    let mut patient_rows: Vec<Option<(u64, bool)>> = vec![None; num_patients]; // (age-ish, died_ever placeholder)
    let mut patient_died_in_hospital = vec![false; num_patients];

    let ins_weights: Vec<f64> = story::INSURANCE.iter().map(|(_, w, _)| *w).collect();
    let eth_weights = [0.70, 0.08, 0.032, 0.026, 0.025, 0.094, 0.018, 0.011];
    let diag_weights: Vec<f64> = story::DIAG_CHAPTERS.iter().map(|(_, w, _)| *w).collect();

    let mut icustay_id = 1i64;
    for hadm in 1..=cfg.admissions as i64 {
        let subject = rng.gen_range(0..num_patients);
        let subject_id = subject as i64 + 1;

        // Insurance drives the admission profile.
        let ins = weighted_choice(&mut rng, &ins_weights);
        let (ins_name, _, death_rate) = story::INSURANCE[ins];

        // Age correlates with insurance: Medicare skews ≥ 65.
        let age = match ins_name {
            "Medicare" => normal_clamped(&mut rng, 76.0, 8.0, 62.0, 95.0),
            "Medicaid" => normal_clamped(&mut rng, 44.0, 14.0, 18.0, 80.0),
            "Self Pay" => normal_clamped(&mut rng, 42.0, 13.0, 18.0, 75.0),
            _ => normal_clamped(&mut rng, 52.0, 15.0, 18.0, 88.0),
        };

        // Emergency admissions are more common for Medicare / Self Pay.
        let p_emergency = match ins_name {
            "Medicare" => 0.83,
            "Self Pay" => 0.86,
            "Medicaid" => 0.72,
            _ => 0.55,
        };
        let adm_type = if coin(&mut rng, p_emergency) {
            0 // EMERGENCY
        } else {
            1 + weighted_choice(&mut rng, &[0.7, 0.25, 0.05])
        };
        let emergency = adm_type == 0;

        // Primary diagnosis chapter (death-rate multiplier).
        let primary_diag = weighted_choice(&mut rng, &diag_weights);
        let diag_mult = story::DIAG_CHAPTERS[primary_diag].2;

        // Death: insurance base rate × diagnosis multiplier × mild
        // age/emergency adjustments, calibrated to keep marginal rates
        // close to the story targets.
        let p_death =
            (death_rate * diag_mult * (if emergency { 1.1 } else { 0.65 }) * (0.55 + age / 150.0))
                .clamp(0.0, 0.95);
        let died = coin(&mut rng, p_death);
        if died {
            patient_died_in_hospital[subject] = true;
        }

        // Stay lengths: longer when died or emergency; ICU los tracks it.
        let base_stay = exponential(&mut rng, 6.0) + 1.0;
        let stay =
            (base_stay * (if died { 1.8 } else { 1.0 }) * (if emergency { 1.25 } else { 1.0 }))
                .min(120.0);
        let hospital_stay_length = stay.round().max(1.0) as i64;

        let year = rng.gen_range(2101..2190); // MIMIC's shifted years
        let admit = format!(
            "{year}-{:02}-{:02}",
            rng.gen_range(1..=12),
            rng.gen_range(1..=28)
        );
        let disch = format!(
            "{year}-{:02}-{:02}",
            rng.gen_range(1..=12),
            rng.gen_range(1..=28)
        );
        let admit_id = db.intern(&admit);
        let disch_id = db.intern(&disch);
        let disch_loc = if died {
            disch_locs[3]
        } else {
            disch_locs[weighted_choice(&mut rng, &[0.5, 0.15, 0.1, 0.0, 0.25])]
        };
        let marital = maritals[weighted_choice(&mut rng, &[0.45, 0.3, 0.15, 0.1])];

        db.table_mut("admissions")
            .unwrap()
            .push_row(vec![
                Value::Int(hadm),
                Value::Int(subject_id),
                Value::Str(admit_id),
                Value::Str(disch_id),
                Value::Str(adm_types[adm_type]),
                Value::Str(
                    adm_locs[if emergency {
                        0
                    } else {
                        1 + weighted_choice(&mut rng, &[0.5, 0.3, 0.2])
                    }],
                ),
                Value::Str(disch_loc),
                Value::Str(ins_ids[ins]),
                Value::Str(marital),
                Value::Int(died as i64),
                Value::Int(hospital_stay_length),
            ])
            .unwrap();

        // patients_admit_info: ethnicity ↔ religion correlation
        // (Hispanic → Catholic, the Q_mimic5 explanation).
        let eth = weighted_choice(&mut rng, &eth_weights);
        let religion = if ETHNICITIES[eth] == "HISPANIC" && coin(&mut rng, 0.75) {
            religions[0] // CATHOLIC
        } else {
            religions[weighted_choice(&mut rng, &[0.35, 0.2, 0.12, 0.23, 0.05, 0.05])]
        };
        let language = if ETHNICITIES[eth] == "HISPANIC" && coin(&mut rng, 0.5) {
            languages[1] // SPAN
        } else {
            languages[weighted_choice(&mut rng, &[0.8, 0.05, 0.05, 0.05, 0.05])]
        };
        db.table_mut("patients_admit_info")
            .unwrap()
            .push_row(vec![
                Value::Int(subject_id),
                Value::Int(hadm),
                Value::Int(age.round() as i64),
                Value::Str(language),
                Value::Str(religion),
                Value::Str(ethnicities[eth]),
            ])
            .unwrap();

        // Patient row on first encounter.
        if patient_rows[subject].is_none() {
            patient_rows[subject] = Some((age as u64, false));
            let gender = genders[weighted_choice(&mut rng, &[0.56, 0.44])];
            let dob = db.intern(&format!(
                "{}-{:02}-{:02}",
                year - age.round() as i32,
                rng.gen_range(1..=12),
                rng.gen_range(1..=28)
            ));
            db.table_mut("patients")
                .unwrap()
                .push_row(vec![
                    Value::Int(subject_id),
                    Value::Str(gender),
                    Value::Str(dob),
                    Value::Null,   // dod patched conceptually via expire_flag
                    Value::Int(0), // expire_flag fixed up below
                ])
                .unwrap();
        }

        // ICU stays: 0-2 per admission; los tracks hospital stay.
        let n_icu = if emergency || died {
            1 + coin(&mut rng, 0.25) as usize
        } else {
            coin(&mut rng, 0.7) as usize
        };
        for _ in 0..n_icu {
            let los = (exponential(&mut rng, (hospital_stay_length as f64 / 3.5).max(0.4)) + 0.1)
                .min(60.0);
            let los = (los * 100.0).round() / 100.0; // bucket the stored value
            let group = match los {
                x if x <= 1.0 => 0,
                x if x <= 2.0 => 1,
                x if x <= 4.0 => 2,
                x if x <= 8.0 => 3,
                _ => 4,
            };
            let cu = careunits[weighted_choice(&mut rng, &[0.35, 0.2, 0.15, 0.15, 0.15])];
            db.table_mut("icustays")
                .unwrap()
                .push_row(vec![
                    Value::Int(subject_id),
                    Value::Int(hadm),
                    Value::Int(icustay_id),
                    Value::Str(dbsources[coin(&mut rng, 0.55) as usize]),
                    Value::Str(cu),
                    Value::Str(cu),
                    Value::Float(los),
                    Value::Str(los_groups[group]),
                ])
                .unwrap();
            icustay_id += 1;
        }

        // Diagnoses: primary + 1-3 secondary.
        let n_diag = 2 + rng.gen_range(0..3);
        for seq in 1..=n_diag {
            let chapter = if seq == 1 {
                primary_diag
            } else {
                weighted_choice(&mut rng, &diag_weights)
            };
            let code = db.intern(&format!(
                "{}{:03}",
                story::DIAG_CHAPTERS[chapter].0,
                rng.gen_range(0..400)
            ));
            db.table_mut("diagnoses")
                .unwrap()
                .push_row(vec![
                    Value::Int(subject_id),
                    Value::Int(hadm),
                    Value::Int(seq as i64),
                    Value::Str(code),
                    Value::Str(diag_chapters[chapter]),
                ])
                .unwrap();
        }

        // Procedures: 1-2; chapter 16 likelier after long ICU stays.
        let n_proc = 1 + coin(&mut rng, 0.5) as usize;
        for seq in 1..=n_proc {
            let chapter = if stay > 8.0 && coin(&mut rng, 0.45) {
                15 // chapter "16" (0-based 15): misc diagnostic/therapeutic
            } else {
                rng.gen_range(0..story::PROC_CHAPTERS)
            };
            let code = db.intern(&format!("{:02}{:02}", chapter + 1, rng.gen_range(0..100)));
            db.table_mut("procedures")
                .unwrap()
                .push_row(vec![
                    Value::Int(subject_id),
                    Value::Int(hadm),
                    Value::Int(seq as i64),
                    Value::Str(code),
                    Value::Str(proc_chapters[chapter]),
                ])
                .unwrap();
        }
    }

    // Fix up patients.expire_flag: died in hospital, or ~15% died later.
    fixup_expire_flags(&mut db, &patient_died_in_hospital, &mut rng);

    register_foreign_keys(&mut db);
    let schema_graph = SchemaGraph::from_foreign_keys(&db);
    GeneratedDb { db, schema_graph }
}

fn create_schema(db: &mut Database) {
    db.create_table(
        SchemaBuilder::new("patients")
            .column_pk("subject_id", DataType::Int, AttrKind::Categorical)
            .column("gender", DataType::Str, AttrKind::Categorical)
            .column("dob", DataType::Str, AttrKind::Categorical)
            .column("dod", DataType::Str, AttrKind::Categorical)
            .column("expire_flag", DataType::Int, AttrKind::Categorical)
            .build(),
    )
    .unwrap();
    db.create_table(
        SchemaBuilder::new("admissions")
            .column_pk("hadm_id", DataType::Int, AttrKind::Categorical)
            .column("subject_id", DataType::Int, AttrKind::Categorical)
            .column("admittime", DataType::Str, AttrKind::Categorical)
            .column("dischtime", DataType::Str, AttrKind::Categorical)
            .column("admission_type", DataType::Str, AttrKind::Categorical)
            .column("admission_location", DataType::Str, AttrKind::Categorical)
            .column("discharge_location", DataType::Str, AttrKind::Categorical)
            .column("insurance", DataType::Str, AttrKind::Categorical)
            .column("marital_status", DataType::Str, AttrKind::Categorical)
            .column("hospital_expire_flag", DataType::Int, AttrKind::Numeric)
            .column("hospital_stay_length", DataType::Int, AttrKind::Numeric)
            .build(),
    )
    .unwrap();
    db.create_table(
        SchemaBuilder::new("patients_admit_info")
            .column_pk("subject_id", DataType::Int, AttrKind::Categorical)
            .column_pk("hadm_id", DataType::Int, AttrKind::Categorical)
            .column("age", DataType::Int, AttrKind::Numeric)
            .column("language", DataType::Str, AttrKind::Categorical)
            .column("religion", DataType::Str, AttrKind::Categorical)
            .column("ethnicity", DataType::Str, AttrKind::Categorical)
            .build(),
    )
    .unwrap();
    db.create_table(
        SchemaBuilder::new("icustays")
            .column_pk("icustay_id", DataType::Int, AttrKind::Categorical)
            .column("subject_id", DataType::Int, AttrKind::Categorical)
            .column("hadm_id", DataType::Int, AttrKind::Categorical)
            .column("dbsource", DataType::Str, AttrKind::Categorical)
            .column("first_careunit", DataType::Str, AttrKind::Categorical)
            .column("last_careunit", DataType::Str, AttrKind::Categorical)
            .column("los", DataType::Float, AttrKind::Numeric)
            .column("los_group", DataType::Str, AttrKind::Categorical)
            .build(),
    )
    .unwrap();
    db.create_table(
        SchemaBuilder::new("diagnoses")
            .column_pk("subject_id", DataType::Int, AttrKind::Categorical)
            .column_pk("hadm_id", DataType::Int, AttrKind::Categorical)
            .column_pk("seq_num", DataType::Int, AttrKind::Categorical)
            .column("icd9_code", DataType::Str, AttrKind::Categorical)
            .column("chapter", DataType::Str, AttrKind::Categorical)
            .build(),
    )
    .unwrap();
    db.create_table(
        SchemaBuilder::new("procedures")
            .column_pk("subject_id", DataType::Int, AttrKind::Categorical)
            .column_pk("hadm_id", DataType::Int, AttrKind::Categorical)
            .column_pk("seq_num", DataType::Int, AttrKind::Categorical)
            .column("icd9_code", DataType::Str, AttrKind::Categorical)
            .column("chapter", DataType::Str, AttrKind::Categorical)
            .build(),
    )
    .unwrap();
}

/// Rewrites the `patients` table with final expire flags (hospital death ⇒
/// 1; otherwise ~15% died outside the hospital — the paper's Q_mimic1
/// discussion points out `expire_flag` subsumes hospital deaths).
fn fixup_expire_flags(db: &mut Database, died_in_hospital: &[bool], rng: &mut StdRng) {
    let patients = db.table("patients").unwrap().clone();
    let mut replacement =
        cajade_storage::Table::with_capacity(patients.schema().clone(), patients.num_rows());
    for r in 0..patients.num_rows() {
        let mut row = patients.row(r).unwrap();
        let subject = row[0].as_i64().unwrap() as usize - 1;
        let flag = died_in_hospital.get(subject).copied().unwrap_or(false) || coin(rng, 0.15);
        row[4] = Value::Int(flag as i64);
        replacement.push_row(row).unwrap();
    }
    db.replace_table(replacement).unwrap();
}

fn register_foreign_keys(db: &mut Database) {
    let fks = [
        (
            "admissions",
            vec!["subject_id"],
            "patients",
            vec!["subject_id"],
        ),
        (
            "patients_admit_info",
            vec!["hadm_id"],
            "admissions",
            vec!["hadm_id"],
        ),
        (
            "patients_admit_info",
            vec!["subject_id"],
            "patients",
            vec!["subject_id"],
        ),
        ("icustays", vec!["hadm_id"], "admissions", vec!["hadm_id"]),
        (
            "icustays",
            vec!["subject_id"],
            "patients",
            vec!["subject_id"],
        ),
        ("diagnoses", vec!["hadm_id"], "admissions", vec!["hadm_id"]),
        (
            "diagnoses",
            vec!["subject_id"],
            "patients",
            vec!["subject_id"],
        ),
        ("procedures", vec!["hadm_id"], "admissions", vec!["hadm_id"]),
        (
            "procedures",
            vec!["subject_id"],
            "patients",
            vec!["subject_id"],
        ),
    ];
    for (from, fc, to, tc) in fks {
        db.add_foreign_key(ForeignKey {
            from_table: from.into(),
            from_cols: fc.into_iter().map(String::from).collect(),
            to_table: to.into(),
            to_cols: tc.into_iter().map(String::from).collect(),
        })
        .unwrap();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cajade_query::{execute, parse_sql};

    fn gen() -> GeneratedDb {
        generate(MimicConfig {
            admissions: 4000,
            seed: 11,
        })
    }

    #[test]
    fn all_six_relations_populated() {
        let g = gen();
        for t in [
            "patients",
            "admissions",
            "patients_admit_info",
            "icustays",
            "diagnoses",
            "procedures",
        ] {
            assert!(g.db.table(t).unwrap().num_rows() > 0, "{t} empty");
        }
        g.schema_graph.validate(&g.db).unwrap();
    }

    #[test]
    fn death_rate_ordering_matches_story() {
        let g = gen();
        let q = parse_sql(
            "SELECT insurance, 1.0*SUM(hospital_expire_flag)/COUNT(*) AS death_rate \
             FROM admissions GROUP BY insurance",
        )
        .unwrap();
        let r = execute(&g.db, &q).unwrap();
        let idx = r.table.schema().field_index("death_rate").unwrap();
        let rate = |ins: &str| -> f64 {
            let row = r.find_row(&g.db, &[("insurance", ins)]).unwrap();
            r.table.value(row, idx).as_f64().unwrap()
        };
        // Medicare ≫ Private; Self Pay highest band; Government low.
        assert!(
            rate("Medicare") > rate("Private") * 1.6,
            "medicare {} vs private {}",
            rate("Medicare"),
            rate("Private")
        );
        assert!(rate("Medicare") > 0.08 && rate("Medicare") < 0.25);
        assert!(rate("Private") < 0.11);
    }

    #[test]
    fn medicare_patients_are_older_and_more_emergency() {
        let g = gen();
        let q = parse_sql(
            "SELECT AVG(age) AS avg_age, insurance \
             FROM admissions a, patients_admit_info pai \
             WHERE a.hadm_id = pai.hadm_id GROUP BY insurance",
        )
        .unwrap();
        let r = execute(&g.db, &q).unwrap();
        let idx = r.table.schema().field_index("avg_age").unwrap();
        let age = |ins: &str| -> f64 {
            let row = r.find_row(&g.db, &[("insurance", ins)]).unwrap();
            r.table.value(row, idx).as_f64().unwrap()
        };
        assert!(age("Medicare") > 65.0);
        assert!(age("Medicare") > age("Private") + 10.0);
    }

    #[test]
    fn chapter2_deadlier_than_chapter13() {
        let g = gen();
        let q = parse_sql(
            "SELECT 1.0*SUM(a.hospital_expire_flag)/COUNT(*) AS death_rate, d.chapter \
             FROM admissions a, diagnoses d \
             WHERE a.hadm_id = d.hadm_id GROUP BY d.chapter",
        )
        .unwrap();
        let r = execute(&g.db, &q).unwrap();
        let idx = r.table.schema().field_index("death_rate").unwrap();
        let rate = |ch: &str| -> f64 {
            let row = r.find_row(&g.db, &[("chapter", ch)]).unwrap();
            r.table.value(row, idx).as_f64().unwrap()
        };
        assert!(rate("2") > rate("13"), "{} vs {}", rate("2"), rate("13"));
        assert!(rate("2") > rate("11"));
    }

    #[test]
    fn icu_los_groups_consistent_with_los() {
        let g = gen();
        let icu = g.db.table("icustays").unwrap();
        let los_i = icu.schema().field_index("los").unwrap();
        let grp_i = icu.schema().field_index("los_group").unwrap();
        for r in 0..icu.num_rows() {
            let los = icu.value(r, los_i).as_f64().unwrap();
            let grp = match icu.value(r, grp_i) {
                Value::Str(id) => g.db.resolve(id).to_string(),
                other => panic!("{other:?}"),
            };
            let expected = match los {
                x if x <= 1.0 => "0-1",
                x if x <= 2.0 => "1-2",
                x if x <= 4.0 => "2-4",
                x if x <= 8.0 => "4-8",
                _ => "x>8",
            };
            assert_eq!(grp, expected, "los {los}");
        }
    }

    #[test]
    fn hispanic_catholic_correlation() {
        let g = gen();
        let pai = g.db.table("patients_admit_info").unwrap();
        let eth_i = pai.schema().field_index("ethnicity").unwrap();
        let rel_i = pai.schema().field_index("religion").unwrap();
        let hispanic = g.db.lookup_str("HISPANIC").unwrap();
        let catholic = g.db.lookup_str("CATHOLIC").unwrap();
        let (mut h_total, mut h_cath, mut o_total, mut o_cath) = (0.0, 0.0, 0.0, 0.0);
        for r in 0..pai.num_rows() {
            let is_h = pai.value(r, eth_i) == Value::Str(hispanic);
            let is_c = pai.value(r, rel_i) == Value::Str(catholic);
            if is_h {
                h_total += 1.0;
                h_cath += is_c as i64 as f64;
            } else {
                o_total += 1.0;
                o_cath += is_c as i64 as f64;
            }
        }
        assert!(h_total > 10.0, "enough Hispanic rows");
        assert!(h_cath / h_total > o_cath / o_total + 0.2);
    }

    #[test]
    fn hospital_death_implies_expire_flag() {
        let g = gen();
        let q = parse_sql(
            "SELECT COUNT(*) AS c, p.expire_flag \
             FROM admissions a, patients p \
             WHERE a.subject_id = p.subject_id AND a.hospital_expire_flag = 1 \
             GROUP BY p.expire_flag",
        )
        .unwrap();
        let r = execute(&g.db, &q).unwrap();
        // All hospital deaths must have expire_flag = 1 (one output group).
        assert_eq!(r.num_rows(), 1);
        assert!(r.find_row(&g.db, &[("expire_flag", "1")]).is_some());
    }

    #[test]
    fn fk_integrity_via_join_counts() {
        let g = gen();
        let q = parse_sql(
            "SELECT COUNT(*) AS c, admission_type FROM admissions a, patients p \
             WHERE a.subject_id = p.subject_id GROUP BY admission_type",
        )
        .unwrap();
        let r = execute(&g.db, &q).unwrap();
        let total: i64 = (0..r.num_rows())
            .map(|i| {
                r.table
                    .value(i, r.table.schema().field_index("c").unwrap())
                    .as_i64()
                    .unwrap()
            })
            .sum();
        assert_eq!(total as usize, g.db.table("admissions").unwrap().num_rows());
    }

    #[test]
    fn deterministic() {
        let a = gen();
        let b = gen();
        assert_eq!(a.db.total_rows(), b.db.total_rows());
    }
}
