//! Question-independent APT preparation (§2.4 interactive usage).
//!
//! In an interactive session the user asks a *sequence* of questions over
//! one query. Most of Algorithm 1's work per APT does not actually depend
//! on the question:
//!
//! * the λ_F1 row sample and its columnar [`ScoreIndex`] (seeded RNG),
//! * numeric fragment boundaries (computed over all APT rows),
//! * the `|num_fields| × λ#frag × 2` refinement predicate bitmaps,
//! * the LCA candidate pool and each candidate's match bitmap,
//! * feature selection — once it is formulated group-globally
//!   ([`select_features_global`](crate::featsel::select_features_global))
//!   instead of per `(t1, t2)` pair.
//!
//! [`prepare_apt`] hoists all of that into a [`PreparedApt`] that the
//! service caches next to the materialized APT, so a **new** question on a
//! warm APT skips the feature-selection / candidate-generation / fragment
//! phases entirely and goes straight to recall ranking + the refinement
//! BFS — both running on the bitmap kernel. Only the per-question scoring
//! runs per ask, and [`MiningTimings`] reports the skipped phases as zero.
//!
//! Deliberate deviations from the per-question
//! [`mine_apt`](crate::miner::mine_apt) flow make
//! this possible (all deterministic, all documented here because they
//! can change which explanations are mined relative to the one-shot
//! path): feature selection is group-global, the LCA pool is sampled
//! from **all** APT rows rather than the two-point question's scope —
//! out-of-scope candidates simply rank last on recall and fall out of the
//! top-k_cat cut — and the default histogram feature selection trains on
//! the λ_F1 sample (the rows the index encodes) rather than on an
//! independent all-rows sample.

use std::collections::HashMap;
use std::time::Instant;

use cajade_graph::Apt;
use cajade_ml::sampling::{bernoulli_sample, sample_with_cap};
use cajade_query::ProvenanceTable;

use crate::engine::{Mask, PredBank, ScoreEngine, ScoreIndex};
use crate::featsel::FeatureSelection;
use crate::fragments::fragment_boundaries;
use crate::lca::lca_candidates;
use crate::miner::{
    mine_core, run_featsel, MiningOutcome, MiningParams, MiningTimings, SampleEval,
};
use crate::pattern::Pattern;
use crate::score::{Question, Scorer};
use crate::stats::{source_column, ColumnStatsProvider, NoSharedStats};

/// Everything about one `(APT, MiningParams)` pair that is independent of
/// the user question. Owns its data (no borrows of the APT), so it can be
/// cached behind `Arc` alongside the materialized APT.
#[derive(Debug, Clone)]
pub struct PreparedApt {
    /// Group-global feature selection (ban list already applied).
    pub fs: FeatureSelection,
    /// Columnar index over the λ_F1 sample (exact when sampling is off).
    /// `None` when prepared for the scalar engine, which never reads it.
    pub index: Option<ScoreIndex>,
    /// The λ_F1 sample rows (`None` ⇒ all rows) — kept so the scalar
    /// fallback engine can score the identical sample.
    pub sample: Option<Vec<u32>>,
    /// LCA candidate pool with each candidate's precomputed match bitmap
    /// (unranked; ranking is per-question; masks absent on the scalar
    /// engine).
    pub pool: Vec<(Pattern, Option<Mask>)>,
    /// Fragment boundaries per selected numeric field.
    pub frag: Vec<(usize, Vec<f64>)>,
    /// Refinement predicate bitmaps aligned with `frag` (scalar: `None`).
    pub bank: Option<PredBank>,
    /// Wall-clock of the preparation phases (attributed to the ask that
    /// computed them; cache hits report zero).
    pub prep_timings: MiningTimings,
    /// True when a request budget expired mid-preparation and later
    /// phases were skipped (empty pool/fragments). A truncated
    /// preparation is still safe to mine — it just finds fewer (or no)
    /// patterns — but it must **not** be cached for future requests.
    pub truncated: bool,
}

impl PreparedApt {
    /// Approximate heap footprint for cache byte budgeting.
    pub fn approx_bytes(&self) -> usize {
        self.index.as_ref().map_or(0, ScoreIndex::approx_bytes)
            + self.bank.as_ref().map_or(0, PredBank::approx_bytes)
            + self
                .pool
                .iter()
                .map(|(p, m)| p.len() * 24 + m.as_ref().map_or(0, Mask::approx_bytes))
                .sum::<usize>()
            + self
                .frag
                .iter()
                .map(|(_, b)| 16 + b.len() * 8)
                .sum::<usize>()
            + self.sample.as_ref().map_or(0, |s| s.len() * 4)
            + self.fs.relevance.len() * 8
            + 256
    }
}

/// Runs every question-independent phase of Algorithm 1 for one APT,
/// computing all column statistics from the APT at hand (the
/// [`NoSharedStats`] pass-through). Multi-graph callers that can share
/// per-column work should use [`prepare_apt_with`].
pub fn prepare_apt(apt: &Apt, pt: &ProvenanceTable, params: &MiningParams) -> PreparedApt {
    prepare_apt_with(apt, pt, params, &NoSharedStats)
}

/// Runs every question-independent phase of Algorithm 1 for one APT,
/// consulting `stats` for shareable per-column statistics.
///
/// Two phases ask the provider, keyed by the base `(table, column)` a
/// context field gathers (PT fields never share — see
/// [`source_column`]):
///
/// * histogram feature selection encodes candidate columns through the
///   provider's pre-fitted bin specs instead of re-fitting per APT;
/// * the fragment stage takes the provider's λ#frag boundaries instead
///   of re-sorting the column's APT gather.
///
/// With a caching provider (the service's database-scoped column-stats
/// cache) the same context column is analyzed **once per database epoch**
/// no matter how many join graphs contain it; every later graph's
/// preparation does linear encodes only.
pub fn prepare_apt_with(
    apt: &Apt,
    pt: &ProvenanceTable,
    params: &MiningParams,
    stats: &dyn ColumnStatsProvider,
) -> PreparedApt {
    cajade_obs::faults::failpoint_infallible("mine.prepare");
    let mut timings = MiningTimings::default();
    // Budget checks sit at the phase boundaries below: a phase either
    // runs to completion or is skipped whole (empty feature selection /
    // candidate pool / fragment list), so a truncated preparation is
    // always internally consistent — it just mines fewer patterns.
    let mut truncated = false;
    let stop_before_phase = |timings: &mut MiningTimings, truncated: &mut bool| -> bool {
        if !*truncated && cajade_obs::budget::stop("prepare") {
            *truncated = true;
            timings.budget_stopped += 1;
        }
        *truncated
    };

    // ---- λ_F1 sample + columnar index. ---------------------------------
    let t0 = Instant::now();
    let sampling_span = cajade_obs::span_detail("sampling_for_f1");
    let sampling_mem = cajade_obs::AllocScope::enter("sampling_for_f1");
    let sample: Option<Vec<u32>> = if params.lambda_f1_samp >= 1.0 {
        None
    } else {
        Some(
            bernoulli_sample(apt.num_rows, params.lambda_f1_samp, params.seed)
                .into_iter()
                .map(|i| i as u32)
                .collect(),
        )
    };
    timings.sampling_for_f1 = t0.elapsed();
    drop(sampling_span);
    drop(sampling_mem);

    // The bitmap state (index, per-candidate masks, predicate bank) is
    // only built for the vectorized engine; a scalar-engine preparation
    // would cache memory the miner never reads. It is built *before*
    // feature selection so the histogram trainer can reuse the index's
    // `(group, PT row)` scan order (its gathers read the same
    // typed-array/dictionary representation the index encodes).
    let vectorized = params.engine == ScoreEngine::Vectorized;
    let t0 = Instant::now();
    let index = {
        let _span = cajade_obs::span_detail("score_index");
        let _mem = cajade_obs::AllocScope::enter("score_index");
        vectorized.then(|| match &sample {
            Some(rows) => ScoreIndex::sampled(apt, pt, rows),
            None => ScoreIndex::exact(apt, pt),
        })
    };
    timings.prepare += t0.elapsed();

    // ---- Feature selection (group-global, cacheable). ------------------
    let t0 = Instant::now();
    let featsel_span = cajade_obs::span_detail("feature_selection");
    let featsel_mem = cajade_obs::AllocScope::enter("feature_selection");
    let fs = if stop_before_phase(&mut timings, &mut truncated) {
        FeatureSelection {
            num_fields: Vec::new(),
            cat_fields: Vec::new(),
            clusters: Vec::new(),
            relevance: vec![0.0; apt.fields.len()],
        }
    } else {
        run_featsel(
            apt,
            pt,
            params,
            index.as_ref(),
            sample.as_deref(),
            None,
            stats,
        )
    };
    timings.feature_selection = t0.elapsed();
    drop(featsel_span);
    drop(featsel_mem);

    // ---- LCA pool over an all-rows λ_pat sample, with match bitmaps. ----
    let t0 = Instant::now();
    let lca_span = cajade_obs::span_detail("gen_pat_cand");
    let lca_mem = cajade_obs::AllocScope::enter("gen_pat_cand");
    let pool: Vec<(Pattern, Option<Mask>)> = if stop_before_phase(&mut timings, &mut truncated) {
        Vec::new()
    } else {
        let lca_rows: Vec<u32> = sample_with_cap(
            apt.num_rows,
            params.lambda_pat_samp,
            params.pat_samp_cap,
            params.seed.wrapping_add(1),
        )
        .into_iter()
        .map(|i| i as u32)
        .collect();
        let mut cat_pats = lca_candidates(apt, &lca_rows, &fs.cat_fields);
        cat_pats.retain(|p| p.len() <= params.max_cat_attrs);
        let mut eq_memo: HashMap<(usize, crate::pattern::Pred), Mask> = HashMap::new();
        cat_pats
            .into_iter()
            .map(|p| {
                let mask = index.as_ref().map(|index| {
                    let mut m = index.full_mask();
                    for (field, pred) in p.preds() {
                        let pm = eq_memo
                            .entry((*field, *pred))
                            .or_insert_with(|| index.eval_pred(*field, pred));
                        m.and_assign(pm);
                    }
                    m
                });
                (p, mask)
            })
            .collect()
    };
    timings.gen_pat_cand = t0.elapsed();
    drop(lca_span);
    drop(lca_mem);

    // ---- Fragment boundaries + refinement predicate bitmaps. ------------
    // Shared boundaries (when the provider has the field's base column)
    // come from one base-table quantile pass per database epoch; the
    // fallback re-derives them from this APT's rows.
    let t0 = Instant::now();
    let frag_span = cajade_obs::span_detail("fragments");
    let frag_mem = cajade_obs::AllocScope::enter("fragments");
    let frag: Vec<(usize, Vec<f64>)> = if stop_before_phase(&mut timings, &mut truncated) {
        Vec::new()
    } else {
        fs.num_fields
            .iter()
            .map(|&f| {
                let shared = source_column(apt, f).and_then(|(t, c)| stats.column_stats(t, c));
                let boundaries = match shared {
                    Some(st) => st.fragments.clone(),
                    None => fragment_boundaries(apt, f, None, params.num_frags),
                };
                (f, boundaries)
            })
            .collect()
    };
    let bank = index.as_ref().map(|index| PredBank::build(index, &frag));
    timings.prepare += t0.elapsed();
    drop(frag_span);
    drop(frag_mem);

    // Conservative cache guard: if the budget expired at *any* point
    // during preparation (including inside feature-selection's
    // between-task stop, which this function can't observe directly),
    // the result may differ from an unbudgeted preparation and must not
    // be cached. Expiry is monotone, so checking once here suffices.
    truncated = truncated || cajade_obs::budget::expired();

    PreparedApt {
        fs,
        index,
        sample,
        pool,
        frag,
        bank,
        prep_timings: timings,
        truncated,
    }
}

/// Runs the per-question half of Algorithm 1 on a [`PreparedApt`].
///
/// The returned [`MiningTimings`] cover only the work done *for this
/// question* — feature-selection / candidate-generation / fragment /
/// prepare phases are zero (the caller adds
/// [`PreparedApt::prep_timings`] on the ask that actually computed the
/// preparation).
pub fn mine_prepared(
    prepared: &PreparedApt,
    apt: &Apt,
    pt: &ProvenanceTable,
    question: &Question,
    params: &MiningParams,
) -> MiningOutcome {
    let mut timings = MiningTimings::default();

    // FD exclusion is inherently question-specific (which attributes
    // restate *these* groups); when enabled it runs per ask against the
    // prepared selection.
    /// Fragment list + bitmap bank rebuilt without FD-excluded fields.
    type FragOverride = (Vec<(usize, Vec<f64>)>, Option<PredBank>);
    let mut fs = prepared.fs.clone();
    let mut frag_override: Option<FragOverride> = None;
    if params.exclude_fd_attrs {
        let t0 = Instant::now();
        let fd = crate::fd::group_determining_fields(apt, pt, question);
        fs.num_fields.retain(|f| !fd.contains(f));
        fs.cat_fields.retain(|f| !fd.contains(f));
        if fs.num_fields.len() != prepared.frag.len() {
            // Rebuild the fragment list + bank without the excluded
            // numeric fields (rare path — FD exclusion is off by default).
            let frag: Vec<(usize, Vec<f64>)> = prepared
                .frag
                .iter()
                .filter(|(f, _)| fs.num_fields.contains(f))
                .cloned()
                .collect();
            let bank = prepared
                .index
                .as_ref()
                .map(|index| PredBank::build(index, &frag));
            frag_override = Some((frag, bank));
        }
        timings.feature_selection += t0.elapsed();
    }

    // Candidate seeds: the pooled patterns, minus any touching an
    // FD-excluded categorical field.
    let candidates: Vec<(Pattern, Option<Mask>)> = prepared
        .pool
        .iter()
        .filter(|(p, _)| {
            !params.exclude_fd_attrs
                || p.preds()
                    .iter()
                    .all(|(f, _)| fs.cat_fields.contains(f) || fs.num_fields.contains(f))
        })
        .cloned()
        .collect();

    let (frag, bank): (&[(usize, Vec<f64>)], Option<&PredBank>) = match &frag_override {
        Some((f, b)) => (f, b.as_ref()),
        None => (&prepared.frag, prepared.bank.as_ref()),
    };

    let scalar_scorer;
    let eval = match (params.engine, &prepared.index, bank) {
        (ScoreEngine::Vectorized, Some(index), Some(bank)) => SampleEval::Vector { index, bank },
        // Scalar engine, or a preparation built for the scalar engine
        // (the service keys prepared state by the full mining-params
        // fingerprint, so an engine mismatch cannot happen there; direct
        // API callers fall back to the scalar scorer).
        _ => {
            scalar_scorer = match &prepared.sample {
                Some(rows) => Scorer::sampled(apt, pt, rows.clone()),
                None => Scorer::exact(apt, pt),
            };
            SampleEval::Scalar(scalar_scorer)
        }
    };

    let (explanations, patterns_evaluated) = mine_core(
        apt,
        pt,
        question,
        params,
        candidates,
        frag,
        &eval,
        &mut timings,
    );

    MiningOutcome {
        explanations,
        timings,
        feature_selection: fs,
        patterns_evaluated,
    }
}
