//! # cajade-mining
//!
//! Summarization-pattern mining over augmented provenance tables — the
//! core algorithmic contribution of the paper (§3, Algorithm 1 "MineAPT").
//!
//! Pipeline per APT:
//!
//! 1. **Feature selection** ([`featsel`]) — random-forest relevance
//!    ranking + correlation clustering keep the λ#sel-attr attributes most
//!    useful for telling the two user-question outputs apart (§3.1). The
//!    default trainer is a histogram forest over pre-binned encoded
//!    columns sharing the scoring engine's scan order
//!    ([`FeatSelEngine::Histogram`]); the float-matrix reference stays
//!    selectable and equivalence-tested.
//! 2. **Categorical candidates** ([`lca`]) — the LCA method of
//!    Gebaly et al. \[19\]: pairwise meets over a sample generate patterns
//!    reflecting frequent constant combinations (§3.2), ranked by recall,
//!    top-k_cat kept (§3.3).
//! 3. **Numeric refinement** ([`miner`]) — thresholds from λ#frag domain
//!    fragments extend patterns one predicate at a time; refinements of
//!    patterns whose recall already fell below λ_recall are pruned, which
//!    is sound because recall is anti-monotone under refinement
//!    (Proposition 3.1, re-proved here as a property test). On the
//!    vectorized engine an F-score upper bound additionally discards
//!    children before their bitmap is ever built
//!    ([`MiningParams::refine_ub_prune`]), bit-identically (also
//!    property-tested).
//! 4. **Scoring & top-k** ([`score`], [`diversity`]) — Definition 7
//!    precision/recall/F-score (optionally over a λ_F1-samp sample), then
//!    diversity-aware top-k selection with the paper's `wscore` (§3.5).

#![warn(missing_docs)]

pub mod diversity;
pub mod engine;
pub mod fd;
pub mod featsel;
pub mod fragments;
pub mod lca;
pub mod miner;
pub mod pattern;
pub mod prepared;
pub mod score;
pub mod stats;

pub use diversity::{diversity_score, match_score, select_top_k_diverse};
pub use engine::{Mask, PredBank, ScoreEngine, ScoreIndex};
pub use fd::group_determining_fields;
pub use featsel::{FeatSelEngine, FeatureSelection, SelAttr};
pub use lca::lca_candidates;
pub use miner::{mine_apt, MinedExplanation, MiningOutcome, MiningParams, MiningTimings};
pub use pattern::{PatValue, Pattern, Pred, PredOp};
pub use prepared::{mine_prepared, prepare_apt, prepare_apt_with, PreparedApt};
pub use score::{PatternMetrics, Question, Scorer};
pub use stats::{
    base_column_stats, compute_column_stats, source_column, BaseTableStats, ColumnStats,
    ColumnStatsConfig, ColumnStatsProvider, NoSharedStats,
};
