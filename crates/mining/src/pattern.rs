//! Summarization patterns (paper Definition 5).
//!
//! A pattern assigns each APT attribute either `*` (unconstrained) or a
//! predicate: `= c` for categorical attributes, `= c` / `≤ x` / `≥ x` for
//! numeric attributes. We store patterns sparsely — only the non-`*`
//! slots — keyed by APT field index.

use std::fmt::Write as _;

use cajade_graph::Apt;
use cajade_storage::{StringPool, Value};

/// Comparison operator of a pattern predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PredOp {
    /// Equality (the only operator allowed on categorical attributes).
    Eq,
    /// `attribute ≤ threshold` (numeric only).
    Le,
    /// `attribute ≥ threshold` (numeric only).
    Ge,
}

impl PredOp {
    /// Paper-style symbol.
    pub fn symbol(self) -> &'static str {
        match self {
            PredOp::Eq => "=",
            PredOp::Le => "≤",
            PredOp::Ge => "≥",
        }
    }
}

/// A hashable pattern constant (float stored as ordered bits so patterns
/// can live in hash sets — the `done` set of Algorithm 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PatValue {
    /// Integer constant.
    Int(i64),
    /// Float constant (bit pattern; construct via [`PatValue::from_value`]).
    Float(u64),
    /// Interned string constant.
    Str(u32),
}

impl PatValue {
    /// Converts a runtime value (non-null) into a pattern constant.
    pub fn from_value(v: &Value) -> Option<PatValue> {
        match v {
            Value::Int(i) => Some(PatValue::Int(*i)),
            Value::Float(f) => Some(PatValue::Float(f.to_bits())),
            Value::Str(id) => Some(PatValue::Str(id.0)),
            Value::Null => None,
        }
    }

    /// Converts back into a runtime value.
    pub fn to_value(self) -> Value {
        match self {
            PatValue::Int(i) => Value::Int(i),
            PatValue::Float(bits) => Value::Float(f64::from_bits(bits)),
            PatValue::Str(id) => Value::Str(cajade_storage::StrId(id)),
        }
    }

    /// Numeric view (for threshold predicates).
    pub fn as_f64(self) -> Option<f64> {
        match self {
            PatValue::Int(i) => Some(i as f64),
            PatValue::Float(bits) => Some(f64::from_bits(bits)),
            PatValue::Str(_) => None,
        }
    }
}

/// One predicate: operator + constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pred {
    /// Comparison operator.
    pub op: PredOp,
    /// Constant / threshold.
    pub value: PatValue,
}

/// A sparse summarization pattern over an APT's attributes.
///
/// Invariant: `preds` is sorted by field index and field indices are
/// distinct, so structural equality and hashing give pattern identity.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Pattern {
    preds: Vec<(usize, Pred)>,
}

impl Pattern {
    /// The empty pattern (all `*`). Used as the refinement seed so that
    /// numeric-only patterns like `salary < 15330435` (Table 4's top
    /// explanation) can be mined; it is never reported itself.
    pub fn empty() -> Self {
        Pattern::default()
    }

    /// Builds a pattern from `(field, pred)` pairs (sorted + deduped;
    /// later entries on the same field win).
    pub fn from_preds(mut preds: Vec<(usize, Pred)>) -> Self {
        preds.sort_by_key(|(f, _)| *f);
        preds.dedup_by(|a, b| {
            if a.0 == b.0 {
                // keep the later entry (`a` is the later one in dedup_by)
                b.1 = a.1;
                true
            } else {
                false
            }
        });
        Pattern { preds }
    }

    /// The predicates, sorted by field index.
    pub fn preds(&self) -> &[(usize, Pred)] {
        &self.preds
    }

    /// Number of non-`*` attributes (`|Φ|` in the diversity score).
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// True for the empty pattern.
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// The predicate on `field`, if any.
    pub fn pred_on(&self, field: usize) -> Option<&Pred> {
        self.preds
            .binary_search_by_key(&field, |(f, _)| *f)
            .ok()
            .map(|i| &self.preds[i].1)
    }

    /// True iff `field` is unconstrained (`*`).
    pub fn is_free(&self, field: usize) -> bool {
        self.pred_on(field).is_none()
    }

    /// Returns a refinement: this pattern plus one predicate on a
    /// currently-free field (Definition: Φ′ is a refinement of Φ if it
    /// replaces one or more `*` slots with comparisons).
    pub fn refine(&self, field: usize, pred: Pred) -> Pattern {
        debug_assert!(self.is_free(field), "refining a constrained field");
        let mut preds = self.preds.clone();
        let pos = preds.partition_point(|(f, _)| *f < field);
        preds.insert(pos, (field, pred));
        Pattern { preds }
    }

    /// Number of predicates on numeric-kind fields (λ_attrNum budget).
    pub fn num_numeric_preds(&self, apt: &Apt) -> usize {
        self.preds
            .iter()
            .filter(|(f, _)| apt.fields[*f].kind == cajade_storage::AttrKind::Numeric)
            .count()
    }

    /// True iff APT row `row` matches every predicate (Definition 5's
    /// `t ⊨ Φ`; NULL matches nothing).
    #[inline]
    pub fn matches(&self, apt: &Apt, row: usize) -> bool {
        for (field, pred) in &self.preds {
            let cell = apt.value(row, *field);
            if cell.is_null() {
                return false;
            }
            let ok = match pred.op {
                PredOp::Eq => cell.sql_eq(&pred.value.to_value()),
                PredOp::Le => match (cell.as_f64(), pred.value.as_f64()) {
                    (Some(x), Some(t)) => x <= t,
                    _ => false,
                },
                PredOp::Ge => match (cell.as_f64(), pred.value.as_f64()) {
                    (Some(x), Some(t)) => x >= t,
                    _ => false,
                },
            };
            if !ok {
                return false;
            }
        }
        true
    }

    /// Renders the pattern in the paper's description style,
    /// e.g. `scoring.player=S. Curry ∧ scoring.pts≥23`.
    pub fn render(&self, apt: &Apt, pool: &StringPool) -> String {
        if self.preds.is_empty() {
            return "⟨empty⟩".to_string();
        }
        let mut out = String::new();
        for (i, (field, pred)) in self.preds.iter().enumerate() {
            if i > 0 {
                out.push_str(" ∧ ");
            }
            let _ = write!(
                out,
                "{}{}{}",
                apt.fields[*field].name,
                pred.op.symbol(),
                pred.value.to_value().render(pool)
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cajade_graph::{Apt, JoinGraph};
    use cajade_query::{parse_sql, ProvenanceTable};
    use cajade_storage::{AttrKind, DataType, Database, SchemaBuilder};

    /// Small APT fixture: a single-table PT with one categorical and one
    /// numeric attribute.
    fn fixture() -> (Database, Apt) {
        let mut db = Database::new("f");
        db.create_table(
            SchemaBuilder::new("t")
                .column_pk("id", DataType::Int, AttrKind::Categorical)
                .column("grp", DataType::Str, AttrKind::Categorical)
                .column("cat", DataType::Str, AttrKind::Categorical)
                .column("num", DataType::Int, AttrKind::Numeric)
                .build(),
        )
        .unwrap();
        let a = db.intern("a");
        let b = db.intern("b");
        let g1 = db.intern("g1");
        let g2 = db.intern("g2");
        let rows = [
            (1, g1, a, 10),
            (2, g1, a, 20),
            (3, g1, b, 30),
            (4, g2, b, 40),
            (5, g2, a, 50),
        ];
        for (id, g, c, n) in rows {
            db.table_mut("t")
                .unwrap()
                .push_row(vec![
                    Value::Int(id),
                    Value::Str(g),
                    Value::Str(c),
                    Value::Int(n),
                ])
                .unwrap();
        }
        let q = parse_sql("SELECT count(*) AS c, grp FROM t GROUP BY grp").unwrap();
        let pt = ProvenanceTable::compute(&db, &q).unwrap();
        let apt = Apt::materialize(&db, &pt, &JoinGraph::pt_only()).unwrap();
        (db, apt)
    }

    #[test]
    fn match_semantics() {
        let (db, apt) = fixture();
        let cat = apt.field_index("prov_t_cat").unwrap();
        let num = apt.field_index("prov_t_num").unwrap();
        let a = db.lookup_str("a").unwrap();
        let p = Pattern::from_preds(vec![
            (
                cat,
                Pred {
                    op: PredOp::Eq,
                    value: PatValue::Str(a.0),
                },
            ),
            (
                num,
                Pred {
                    op: PredOp::Le,
                    value: PatValue::Int(20),
                },
            ),
        ]);
        let matches: Vec<usize> = (0..apt.num_rows).filter(|&r| p.matches(&apt, r)).collect();
        assert_eq!(matches, vec![0, 1]); // rows with cat=a and num≤20
    }

    #[test]
    fn ge_predicate() {
        let (_db, apt) = fixture();
        let num = apt.field_index("prov_t_num").unwrap();
        let p = Pattern::from_preds(vec![(
            num,
            Pred {
                op: PredOp::Ge,
                value: PatValue::Int(40),
            },
        )]);
        let count = (0..apt.num_rows).filter(|&r| p.matches(&apt, r)).count();
        assert_eq!(count, 2);
    }

    #[test]
    fn empty_pattern_matches_everything() {
        let (_db, apt) = fixture();
        let p = Pattern::empty();
        assert!(p.is_empty());
        assert!((0..apt.num_rows).all(|r| p.matches(&apt, r)));
    }

    #[test]
    fn refine_preserves_sorted_invariant() {
        let (_db, apt) = fixture();
        let cat = apt.field_index("prov_t_cat").unwrap();
        let num = apt.field_index("prov_t_num").unwrap();
        let p = Pattern::empty()
            .refine(
                num,
                Pred {
                    op: PredOp::Le,
                    value: PatValue::Int(30),
                },
            )
            .refine(
                cat,
                Pred {
                    op: PredOp::Eq,
                    value: PatValue::Str(0),
                },
            );
        assert_eq!(p.len(), 2);
        assert!(p.preds().windows(2).all(|w| w[0].0 < w[1].0));
        assert!(!p.is_free(cat));
        assert!(p.is_free(0));
    }

    #[test]
    fn pattern_identity_in_hash_set() {
        use std::collections::HashSet;
        let p1 = Pattern::from_preds(vec![
            (
                3,
                Pred {
                    op: PredOp::Le,
                    value: PatValue::Float(2.5f64.to_bits()),
                },
            ),
            (
                1,
                Pred {
                    op: PredOp::Eq,
                    value: PatValue::Str(7),
                },
            ),
        ]);
        let p2 = Pattern::from_preds(vec![
            (
                1,
                Pred {
                    op: PredOp::Eq,
                    value: PatValue::Str(7),
                },
            ),
            (
                3,
                Pred {
                    op: PredOp::Le,
                    value: PatValue::Float(2.5f64.to_bits()),
                },
            ),
        ]);
        let mut set = HashSet::new();
        set.insert(p1);
        assert!(set.contains(&p2), "order-insensitive identity");
    }

    #[test]
    fn from_preds_dedups_same_field() {
        let p = Pattern::from_preds(vec![
            (
                1,
                Pred {
                    op: PredOp::Eq,
                    value: PatValue::Int(1),
                },
            ),
            (
                1,
                Pred {
                    op: PredOp::Eq,
                    value: PatValue::Int(2),
                },
            ),
        ]);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn render_uses_field_names_and_pool() {
        let (db, apt) = fixture();
        let cat = apt.field_index("prov_t_cat").unwrap();
        let a = db.lookup_str("a").unwrap();
        let p = Pattern::from_preds(vec![(
            cat,
            Pred {
                op: PredOp::Eq,
                value: PatValue::Str(a.0),
            },
        )]);
        assert_eq!(p.render(&apt, db.pool()), "prov_t_cat=a");
        assert_eq!(Pattern::empty().render(&apt, db.pool()), "⟨empty⟩");
    }

    #[test]
    fn null_never_matches() {
        let mut db = Database::new("n");
        db.create_table(
            SchemaBuilder::new("t")
                .column_pk("id", DataType::Int, AttrKind::Categorical)
                .column("grp", DataType::Str, AttrKind::Categorical)
                .column("x", DataType::Int, AttrKind::Numeric)
                .build(),
        )
        .unwrap();
        let g = db.intern("g");
        db.table_mut("t")
            .unwrap()
            .push_row(vec![Value::Int(1), Value::Str(g), Value::Null])
            .unwrap();
        let q = parse_sql("SELECT count(*) AS c, grp FROM t GROUP BY grp").unwrap();
        let pt = ProvenanceTable::compute(&db, &q).unwrap();
        let apt = Apt::materialize(&db, &pt, &JoinGraph::pt_only()).unwrap();
        let x = apt.field_index("prov_t_x").unwrap();
        for op in [PredOp::Eq, PredOp::Le, PredOp::Ge] {
            let p = Pattern::from_preds(vec![(
                x,
                Pred {
                    op,
                    value: PatValue::Int(0),
                },
            )]);
            assert!(!p.matches(&apt, 0), "{op:?} must not match NULL");
        }
    }

    use cajade_storage::Value;
}
