//! Attribute clustering + relevance-based filtering (paper §3.1,
//! `filterAttrs` in Algorithm 1).
//!
//! 1. Train a random forest predicting "does this APT row belong to the
//!    provenance of `t1` (vs. `t2`)?" and rank attributes by
//!    mean-decrease-impurity relevance.
//! 2. Cluster mutually-correlated attributes (VARCLUS substitute, see
//!    `cajade-ml::cluster`) and keep one representative per cluster —
//!    the member with the highest relevance.
//! 3. Keep the λ#sel-attr most relevant representatives.
//!
//! Two trainers implement step 1, selected by [`FeatSelEngine`]:
//!
//! * [`FeatSelEngine::FloatMatrix`] — the original path: decode APT cells
//!   into per-sample `f64` rows / hash-interned codes and train the
//!   row-rescanning [`RandomForest`];
//! * [`FeatSelEngine::Histogram`] (default) — gather the candidate
//!   columns straight from the typed arrays / interned string ids (no
//!   `Value` boxing) in the scoring engine's `(group, PT row)` scan
//!   order, quantile-bin each numeric column **once**, and train
//!   [`HistForest`]s whose per-node split search reads class histograms
//!   instead of re-scanning rows. When a
//!   [`ScoreIndex`](crate::engine::ScoreIndex) exists (vectorized
//!   engine), its scan order is reused (the gather reads the same
//!   encoded representation the index holds); the scalar engine
//!   reconstructs the identical order with [`hist_scan_order`], so both
//!   engines select identical features.
//!
//! The histogram path trains on the λ_F1 sample (the rows the index
//! covers) rather than all APT rows — a deliberate, documented deviation
//! from the float path that keeps preparation single-pass; the
//! `max_train_rows` reservoir cap usually dominates either way.

use std::collections::HashMap;

use cajade_graph::Apt;
use cajade_ml::cluster::{cluster_attributes, cluster_representatives};
use cajade_ml::correlation::assoc_matrix;
use cajade_ml::forest::{HistForest, RandomForest, RandomForestConfig};
use cajade_ml::sampling::reservoir_sample;
use cajade_ml::{BinSpec, BinnedColumn, FeatureColumn};
use cajade_query::ProvenanceTable;
use cajade_storage::{AttrKind, Column, Value};

use crate::pattern::PatValue;
use crate::score::Question;
use crate::stats::{source_column, ColumnStatsProvider};

/// λ#sel-attr: how many attributes feature selection keeps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SelAttr {
    /// Keep the top `n` attributes (Table 1's default is 3).
    Count(usize),
    /// Keep the top fraction of attributes (the §3.1 formulation).
    Fraction(f64),
    /// Keep everything (feature selection as pure ranking).
    All,
}

impl SelAttr {
    fn resolve(&self, available: usize) -> usize {
        match self {
            SelAttr::Count(n) => (*n).min(available),
            SelAttr::Fraction(f) => ((available as f64 * f).ceil() as usize).clamp(1, available),
            SelAttr::All => available,
        }
    }
}

/// Which forest trainer implements `filterAttrs`' relevance ranking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeatSelEngine {
    /// Decode APT cells into float matrices / hash-interned codes and
    /// train the row-rescanning reference forest. Kept as the verified
    /// baseline (see the `hist_featsel_equivalence` integration tests).
    FloatMatrix,
    /// Gather encoded columns in scan order, bin once, train histogram
    /// forests ([`HistForest`]).
    Histogram,
}

/// Result of `filterAttrs`.
#[derive(Debug, Clone)]
pub struct FeatureSelection {
    /// Selected numeric APT fields (`A_num` of Algorithm 1).
    pub num_fields: Vec<usize>,
    /// Selected categorical APT fields (`A_cat`).
    pub cat_fields: Vec<usize>,
    /// Attribute clusters found (over candidate fields).
    pub clusters: Vec<Vec<usize>>,
    /// Per-APT-field forest relevance (0 where not a candidate).
    pub relevance: Vec<f64>,
}

/// Configuration for feature selection.
#[derive(Debug, Clone)]
pub struct FeatSelConfig {
    /// λ#sel-attr.
    pub sel_attr: SelAttr,
    /// Minimum mutual association for clustering two attributes.
    pub cluster_threshold: f64,
    /// Number of forest trees.
    pub forest_trees: usize,
    /// Cap on training rows (runtime guard; sampled uniformly above it).
    pub max_train_rows: usize,
    /// Bin budget per column for the histogram trainer (numeric quantile
    /// bins / retained categorical values). Twice the float trainer's
    /// per-node threshold cap, since global bins must serve every node.
    pub hist_bins: usize,
    /// Row cap for the association-matrix estimate on the histogram path
    /// (strided subsample over the group-sorted training rows). The
    /// matrix only feeds a thresholded clustering decision, so a few
    /// hundred rows estimate it as well as thousands — and the `p²/2`
    /// pairwise measures are the dominant cost of the phase once forest
    /// training is histogram-based. The float path keeps the uncapped
    /// computation as the frozen reference.
    pub max_assoc_rows: usize,
    /// Seed for forest + sampling.
    pub seed: u64,
}

impl Default for FeatSelConfig {
    fn default() -> Self {
        Self {
            sel_attr: SelAttr::Count(3),
            cluster_threshold: 0.9,
            forest_trees: 20,
            max_train_rows: 5000,
            hist_bins: 32,
            max_assoc_rows: 512,
            seed: 0xFEA7,
        }
    }
}

/// Runs `filterAttrs` over an APT for a user question.
pub fn select_features(
    apt: &Apt,
    pt: &ProvenanceTable,
    question: &Question,
    cfg: &FeatSelConfig,
) -> FeatureSelection {
    let candidates = apt.pattern_fields();
    let relevance = vec![0.0; apt.fields.len()];

    if candidates.is_empty() {
        return FeatureSelection {
            num_fields: Vec::new(),
            cat_fields: Vec::new(),
            clusters: Vec::new(),
            relevance,
        };
    }

    // Training rows: APT rows in the question's scope, with binary labels.
    let (rows, labels) = training_rows(apt, pt, question, cfg);

    // Feature matrix over candidate fields.
    let features: Vec<FeatureColumn> = candidates
        .iter()
        .map(|&f| feature_column(apt, f, &rows))
        .collect();

    // Forest relevance (uniform fallback when a class is missing, or
    // when the request budget expired before training could start).
    let has_both = labels.iter().any(|&l| l) && labels.iter().any(|&l| !l);
    let importances: Vec<f64> =
        if has_both && !rows.is_empty() && !cajade_obs::budget::stop("featsel.forest") {
            let forest = RandomForest::fit(
                &features,
                &labels,
                &RandomForestConfig {
                    num_trees: cfg.forest_trees,
                    seed: cfg.seed,
                    ..Default::default()
                },
            );
            forest.importances
        } else {
            vec![1.0 / candidates.len() as f64; candidates.len()]
        };
    finish_selection(
        apt,
        &candidates,
        importances,
        assoc_matrix(&features),
        cfg,
        relevance,
    )
}

/// Question-independent `filterAttrs`: ranks attributes by their ability
/// to tell the query's output groups apart in general, rather than for
/// one specific `(t1, t2)` pair.
///
/// A one-vs-rest forest is trained for each of the up to
/// `MAX_ONE_VS_REST` (currently 4) largest output groups with the
/// overall tree budget split across them, and the
/// importances are averaged weighted by `|PT(t)|`. Clustering and
/// representative selection are shared with [`select_features`]. This is
/// what makes feature selection cacheable in a
/// [`PreparedApt`](crate::prepared::PreparedApt): the result depends only
/// on the APT and the parameters, so a *new* question on a warm APT skips
/// the phase entirely.
pub fn select_features_global(
    apt: &Apt,
    pt: &ProvenanceTable,
    cfg: &FeatSelConfig,
) -> FeatureSelection {
    let candidates = apt.pattern_fields();
    let relevance = vec![0.0; apt.fields.len()];
    if candidates.is_empty() {
        return FeatureSelection {
            num_fields: Vec::new(),
            cat_fields: Vec::new(),
            clusters: Vec::new(),
            relevance,
        };
    }

    // Training rows: all APT rows, reservoir-capped; the feature matrix is
    // extracted once and shared by every one-vs-rest task.
    let mut rows: Vec<u32> = (0..apt.num_rows as u32).collect();
    if rows.len() > cfg.max_train_rows {
        let keep = reservoir_sample(rows.len(), cfg.max_train_rows, cfg.seed);
        rows = keep.into_iter().map(|i| rows[i]).collect();
    }
    let features: Vec<FeatureColumn> = candidates
        .iter()
        .map(|&f| feature_column(apt, f, &rows))
        .collect();
    let row_groups: Vec<u32> = rows
        .iter()
        .map(|&r| pt.group_of[apt.pt_row[r as usize] as usize])
        .collect();

    let mut importances = vec![0.0; candidates.len()];
    let mut any_task = false;
    for (g, weight, forest_cfg) in one_vs_rest_plan(pt, cfg) {
        // One forest fit per task; an expired budget stops between
        // tasks, keeping whatever importances accumulated so far.
        if cajade_obs::budget::stop("featsel.forest") {
            break;
        }
        let labels: Vec<bool> = row_groups.iter().map(|&rg| rg as usize == g).collect();
        let has_both = labels.iter().any(|&l| l) && labels.iter().any(|&l| !l);
        if !has_both || rows.is_empty() {
            continue;
        }
        any_task = true;
        let forest = RandomForest::fit(&features, &labels, &forest_cfg);
        for (imp, fi) in importances.iter_mut().zip(&forest.importances) {
            *imp += weight * fi;
        }
    }
    if !any_task {
        importances = vec![1.0 / candidates.len() as f64; candidates.len()];
    }

    finish_selection(
        apt,
        &candidates,
        importances,
        assoc_matrix(&features),
        cfg,
        relevance,
    )
}

/// The group-global one-vs-rest task plan, shared verbatim by both
/// trainers (the same reason `cajade_ml::forest` factors its bagging
/// loop into one copy): up to `MAX_ONE_VS_REST` largest output groups by
/// full `|PT(t)|` (ties by index), the tree budget and per-tree row
/// budget split across tasks — so the ensemble costs about as much as
/// one question-specific forest rather than `tasks ×` that — with
/// `|PT(t)|`-proportional importance weights and per-group seed offsets.
fn one_vs_rest_plan(
    pt: &ProvenanceTable,
    cfg: &FeatSelConfig,
) -> Vec<(usize, f64, RandomForestConfig)> {
    /// Cap on one-vs-rest tasks, so wide group-bys don't multiply cost.
    const MAX_ONE_VS_REST: usize = 4;

    // The largest groups by full |PT(t)| (ties by index, deterministic).
    let mut groups: Vec<(usize, usize)> = pt
        .rows_of_group
        .iter()
        .enumerate()
        .map(|(g, rows)| (g, rows.len()))
        .filter(|&(_, n)| n > 0)
        .collect();
    groups.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    groups.truncate(MAX_ONE_VS_REST);

    let tasks = groups.len().max(1);
    let trees_per_task = (cfg.forest_trees.div_ceil(tasks)).max(2);
    let bootstrap_fraction = 1.0 / tasks as f64;
    let total_weight: f64 = groups.iter().map(|&(_, n)| n as f64).sum();

    groups
        .into_iter()
        .map(|(g, pt_size)| {
            (
                g,
                pt_size as f64 / total_weight.max(1.0),
                RandomForestConfig {
                    num_trees: trees_per_task,
                    bootstrap_fraction,
                    seed: cfg.seed.wrapping_add(g as u64),
                    ..Default::default()
                },
            )
        })
        .collect()
}

// ---------------------------------------------------------------------
// Histogram-forest `filterAttrs` on encoded columns.
// ---------------------------------------------------------------------

/// The canonical training order of the histogram trainer: the λ_F1
/// sample rows (all rows when sampling is off) sorted by
/// `(output group, PT row)` — exactly the scan order
/// [`ScoreIndex`](crate::engine::ScoreIndex) builds. Callers holding an
/// index should pass [`ScoreIndex::order`](crate::engine::ScoreIndex::order)
/// instead of recomputing this.
pub fn hist_scan_order(apt: &Apt, pt: &ProvenanceTable, sample: Option<&[u32]>) -> Vec<u32> {
    let mut rows: Vec<u32> = match sample {
        Some(s) => s.to_vec(),
        None => (0..apt.num_rows as u32).collect(),
    };
    rows.sort_by_key(|&r| {
        let p = apt.pt_row[r as usize];
        (pt.group_of[p as usize], p)
    });
    rows
}

/// The dictionary key of one categorical cell: interned string id, raw
/// integer, or float bits — whatever the typed column already stores, so
/// no value decoding or hash-interning of rendered values is needed.
fn cat_key(col: &Column, r: usize) -> Option<u64> {
    match col {
        Column::Int { data, nulls } => (!nulls.is_null(r)).then(|| data[r] as u64),
        Column::Float { data, nulls } => (!nulls.is_null(r)).then(|| data[r].to_bits()),
        Column::Str { data, nulls } => (!nulls.is_null(r)).then(|| data[r].0 as u64),
    }
}

/// Gathers one APT field over `rows` straight from the typed column
/// arrays (no `Value` boxing): numeric values as-is, categorical cells as
/// first-appearance dense codes — the identical code assignment (and
/// therefore identical association matrix) the float path's decode
/// produces, at a fraction of its cost.
///
/// For categorical fields the second return value maps each dense code
/// back to the raw dictionary key it stands for (empty for numeric
/// fields) — what [`cajade_ml::BinSpec::encode_dense_keys`] needs to bin
/// the gather through a *shared* spec without re-reading the column.
fn fast_feature_column(apt: &Apt, field: usize, rows: &[u32]) -> (FeatureColumn, Vec<u64>) {
    match apt.fields[field].kind {
        AttrKind::Numeric => (
            FeatureColumn::Numeric(
                rows.iter()
                    .map(|&r| apt.columns[field].f64_at(r as usize).unwrap_or(f64::NAN))
                    .collect(),
            ),
            Vec::new(),
        ),
        AttrKind::Categorical => {
            let col = &apt.columns[field];
            let mut codes: HashMap<u64, u32> = HashMap::new();
            let mut key_of_code: Vec<u64> = Vec::new();
            let data = rows
                .iter()
                .map(|&r| match cat_key(col, r as usize) {
                    None => u32::MAX,
                    Some(k) => {
                        let next = codes.len() as u32;
                        *codes.entry(k).or_insert_with(|| {
                            key_of_code.push(k);
                            next
                        })
                    }
                })
                .collect();
            (FeatureColumn::Categorical(data), key_of_code)
        }
    }
}

/// Shared tail of both histogram paths: gather each candidate column
/// once, bin it for the forest, run the per-task forests, average
/// importances, and cluster on the same gathered view (the association
/// matrix is computed over full values/codes, not bins, so clustering
/// decisions match the float path on identical training rows).
///
/// Binning consults the injected [`ColumnStatsProvider`] first: a context
/// column with shared statistics encodes its gather through the provider's
/// pre-fitted [`cajade_ml::BinSpec`] (a linear pass — no per-APT quantile
/// sort or dictionary build); columns without shared stats (PT fields,
/// pass-through provider) fit per-APT exactly as before.
fn hist_selection(
    apt: &Apt,
    candidates: &[usize],
    rows: &[u32],
    tasks: &[(Vec<bool>, f64, RandomForestConfig)],
    cfg: &FeatSelConfig,
    stats: &dyn ColumnStatsProvider,
    relevance: Vec<f64>,
) -> FeatureSelection {
    let (features, key_maps): (Vec<FeatureColumn>, Vec<Vec<u64>>) = candidates
        .iter()
        .map(|&f| fast_feature_column(apt, f, rows))
        .unzip();
    let cols: Vec<BinnedColumn> = candidates
        .iter()
        .zip(features.iter().zip(&key_maps))
        .map(|(&f, (fc, key_of_code))| {
            let shared = source_column(apt, f).and_then(|(t, c)| stats.column_stats(t, c));
            match (fc, shared) {
                (FeatureColumn::Numeric(v), Some(st)) => st.bins.encode_f64(v),
                (FeatureColumn::Numeric(v), None) => BinnedColumn::from_f64(v, cfg.hist_bins),
                // The shared dictionary maps raw keys; the gather is
                // already dense-coded, so binning it is one remap lookup
                // per distinct value + an array index per row.
                (FeatureColumn::Categorical(codes), Some(st)) => {
                    st.bins.encode_dense_keys(codes, key_of_code)
                }
                // Per-APT fit: the codes are dense first-appearance
                // already, so fit on them directly and encode through
                // the identity dictionary — one hash pass total, like
                // the pre-BinSpec `from_keys`.
                (FeatureColumn::Categorical(codes), None) => {
                    let spec = BinSpec::fit_keys(
                        codes.iter().map(|&c| (c != u32::MAX).then_some(c as u64)),
                        cfg.hist_bins,
                    );
                    let identity: Vec<u64> = (0..key_of_code.len() as u64).collect();
                    spec.encode_dense_keys(codes, &identity)
                }
            }
        })
        .collect();

    let mut importances = vec![0.0; candidates.len()];
    let mut any_task = false;
    for (labels, weight, forest_cfg) in tasks {
        // Same between-task stop as the float trainer: histogram-forest
        // training is the one unbounded ML loop, and each task is a
        // whole forest fit.
        if cajade_obs::budget::stop("featsel.forest") {
            break;
        }
        let has_both = labels.iter().any(|&l| l) && labels.iter().any(|&l| !l);
        if !has_both || rows.is_empty() {
            continue;
        }
        any_task = true;
        let forest = HistForest::fit(&cols, labels, forest_cfg);
        for (imp, fi) in importances.iter_mut().zip(&forest.importances) {
            *imp += weight * fi;
        }
    }
    if !any_task {
        importances = vec![1.0 / candidates.len() as f64; candidates.len()];
    }

    // Association estimate, twice restricted:
    //
    // * columns — only the `max(16, 4·λ#sel-attr)` most important
    //   candidates are clustered to start with (a low-relevance feature
    //   can never *represent* a cluster past a higher member, so the
    //   unmeasured tail stays as 0-association singletons); if the
    //   selection nevertheless reaches into that tail — the measured top
    //   collapsed into fewer clusters than λ#sel-attr — the matrix is
    //   recomputed over *all* candidates, so redundant tail features can
    //   never be co-selected just because their pairs went unmeasured;
    // * rows — a strided subsample (rows are group-sorted, so a fixed
    //   stride samples every output group proportionally): the matrix
    //   feeds a thresholded merge decision, not a precise estimate.
    let step = if rows.len() > cfg.max_assoc_rows.max(1) {
        rows.len().div_ceil(cfg.max_assoc_rows.max(1))
    } else {
        1
    };
    let lambda = cfg.sel_attr.resolve(candidates.len());
    let mut by_importance: Vec<usize> = (0..candidates.len()).collect();
    // `total_cmp`: a NaN importance (degenerate training data) must not
    // make the ranking order nondeterministic.
    by_importance.sort_by(|&a, &b| importances[b].total_cmp(&importances[a]).then(a.cmp(&b)));
    let mut m = (4 * lambda).max(16).min(candidates.len());
    loop {
        let mut measured: Vec<usize> = by_importance[..m].to_vec();
        measured.sort_unstable();
        let assoc = if step == 1 && m == candidates.len() {
            assoc_matrix(&features)
        } else {
            let views: Vec<FeatureColumn> = measured
                .iter()
                .map(|&i| match &features[i] {
                    FeatureColumn::Numeric(v) => {
                        FeatureColumn::Numeric(v.iter().step_by(step).copied().collect())
                    }
                    FeatureColumn::Categorical(v) => {
                        FeatureColumn::Categorical(v.iter().step_by(step).copied().collect())
                    }
                })
                .collect();
            let small = assoc_matrix(&views);
            let mut full = vec![vec![0.0; candidates.len()]; candidates.len()];
            for (i, row) in full.iter_mut().enumerate() {
                row[i] = 1.0;
            }
            for (si, &i) in measured.iter().enumerate() {
                for (sj, &j) in measured.iter().enumerate() {
                    full[i][j] = small[si][sj];
                }
            }
            full
        };
        let fs = finish_selection(
            apt,
            candidates,
            importances.clone(),
            assoc,
            cfg,
            relevance.clone(),
        );
        let all_selected_measured = m == candidates.len() || {
            let measured_fields: Vec<usize> = measured.iter().map(|&i| candidates[i]).collect();
            fs.num_fields
                .iter()
                .chain(&fs.cat_fields)
                .all(|f| measured_fields.contains(f))
        };
        if all_selected_measured {
            return fs;
        }
        // Rare fallback: the restricted clustering ran out of measured
        // representatives — measure every pair and redo.
        m = candidates.len();
    }
}

/// Histogram-forest `filterAttrs` for one question (the [`select_features`]
/// counterpart): trains on the scan-order rows belonging to the
/// question's output group(s).
pub fn select_features_hist(
    apt: &Apt,
    pt: &ProvenanceTable,
    scan_order: &[u32],
    question: &Question,
    cfg: &FeatSelConfig,
    stats: &dyn ColumnStatsProvider,
) -> FeatureSelection {
    let candidates = apt.pattern_fields();
    let relevance = vec![0.0; apt.fields.len()];
    if candidates.is_empty() {
        return FeatureSelection {
            num_fields: Vec::new(),
            cat_fields: Vec::new(),
            clusters: Vec::new(),
            relevance,
        };
    }

    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for &r in scan_order {
        let g = pt.group_of[apt.pt_row[r as usize] as usize] as usize;
        let label = match question {
            Question::TwoPoint { t1, t2 } => {
                if g == *t1 {
                    true
                } else if g == *t2 {
                    false
                } else {
                    continue;
                }
            }
            Question::SinglePoint { t } => g == *t,
        };
        rows.push(r);
        labels.push(label);
    }
    if rows.len() > cfg.max_train_rows {
        let keep = reservoir_sample(rows.len(), cfg.max_train_rows, cfg.seed);
        rows = keep.iter().map(|&i| rows[i]).collect();
        labels = keep.iter().map(|&i| labels[i]).collect();
    }

    let forest_cfg = RandomForestConfig {
        num_trees: cfg.forest_trees,
        seed: cfg.seed,
        ..Default::default()
    };
    hist_selection(
        apt,
        &candidates,
        &rows,
        &[(labels, 1.0, forest_cfg)],
        cfg,
        stats,
        relevance,
    )
}

/// Histogram-forest group-global `filterAttrs` (the
/// [`select_features_global`] counterpart): one-vs-rest tasks over the
/// largest output groups, importances averaged weighted by `|PT(t)|`.
/// Question-independent, so the result is cacheable in a
/// [`PreparedApt`](crate::prepared::PreparedApt).
pub fn select_features_hist_global(
    apt: &Apt,
    pt: &ProvenanceTable,
    scan_order: &[u32],
    cfg: &FeatSelConfig,
    stats: &dyn ColumnStatsProvider,
) -> FeatureSelection {
    let candidates = apt.pattern_fields();
    let relevance = vec![0.0; apt.fields.len()];
    if candidates.is_empty() {
        return FeatureSelection {
            num_fields: Vec::new(),
            cat_fields: Vec::new(),
            clusters: Vec::new(),
            relevance,
        };
    }

    let mut rows: Vec<u32> = scan_order.to_vec();
    if rows.len() > cfg.max_train_rows {
        let keep = reservoir_sample(rows.len(), cfg.max_train_rows, cfg.seed);
        rows = keep.into_iter().map(|i| rows[i]).collect();
    }
    let row_groups: Vec<u32> = rows
        .iter()
        .map(|&r| pt.group_of[apt.pt_row[r as usize] as usize])
        .collect();

    // Same task plan as the float trainer — one shared copy.
    let tasks: Vec<(Vec<bool>, f64, RandomForestConfig)> = one_vs_rest_plan(pt, cfg)
        .into_iter()
        .map(|(g, weight, forest_cfg)| {
            let labels: Vec<bool> = row_groups.iter().map(|&rg| rg as usize == g).collect();
            (labels, weight, forest_cfg)
        })
        .collect();

    hist_selection(apt, &candidates, &rows, &tasks, cfg, stats, relevance)
}

/// Shared tail of `filterAttrs`: correlation clustering, representative
/// picking, and λ#sel-attr ranking over forest importances. `assoc` is
/// the candidate-pairwise association matrix — both paths compute it
/// over full decoded values/codes (never over bins), the histogram path
/// merely restricting which pairs and rows it measures.
fn finish_selection(
    apt: &Apt,
    candidates: &[usize],
    importances: Vec<f64>,
    assoc: Vec<Vec<f64>>,
    cfg: &FeatSelConfig,
    mut relevance: Vec<f64>,
) -> FeatureSelection {
    for (&f, &imp) in candidates.iter().zip(&importances) {
        relevance[f] = imp;
    }

    // Cluster correlated attributes, keep one representative each.
    let clusters_local = cluster_attributes(&assoc, cfg.cluster_threshold);
    let reps_local = cluster_representatives(&clusters_local, &importances);

    // Rank representatives by relevance, keep λ#sel-attr of them.
    let mut reps: Vec<usize> = reps_local.iter().map(|&l| candidates[l]).collect();
    // `total_cmp` keeps the ranking a total order even under NaN
    // relevance (see the NaN-safety sweep in `crate::fragments`).
    reps.sort_by(|&a, &b| relevance[b].total_cmp(&relevance[a]).then(a.cmp(&b)));
    let keep = cfg.sel_attr.resolve(reps.len());
    reps.truncate(keep);

    let clusters: Vec<Vec<usize>> = clusters_local
        .iter()
        .map(|c| c.iter().map(|&l| candidates[l]).collect())
        .collect();

    let (num_fields, cat_fields): (Vec<usize>, Vec<usize>) = reps
        .into_iter()
        .partition(|&f| apt.fields[f].kind == AttrKind::Numeric);

    FeatureSelection {
        num_fields,
        cat_fields,
        clusters,
        relevance,
    }
}

/// When feature selection is disabled, every pattern-eligible field is
/// kept (split by kind).
pub fn all_features(apt: &Apt) -> FeatureSelection {
    let candidates = apt.pattern_fields();
    let (num_fields, cat_fields) = candidates
        .into_iter()
        .partition(|&f| apt.fields[f].kind == AttrKind::Numeric);
    FeatureSelection {
        num_fields,
        cat_fields,
        clusters: Vec::new(),
        relevance: vec![0.0; apt.fields.len()],
    }
}

fn training_rows(
    apt: &Apt,
    pt: &ProvenanceTable,
    question: &Question,
    cfg: &FeatSelConfig,
) -> (Vec<u32>, Vec<bool>) {
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for r in 0..apt.num_rows {
        let g = pt.group_of[apt.pt_row[r] as usize] as usize;
        let label = match question {
            Question::TwoPoint { t1, t2 } => {
                if g == *t1 {
                    true
                } else if g == *t2 {
                    false
                } else {
                    continue;
                }
            }
            Question::SinglePoint { t } => g == *t,
        };
        rows.push(r as u32);
        labels.push(label);
    }
    if rows.len() > cfg.max_train_rows {
        let keep = reservoir_sample(rows.len(), cfg.max_train_rows, cfg.seed);
        let rows2: Vec<u32> = keep.iter().map(|&i| rows[i]).collect();
        let labels2: Vec<bool> = keep.iter().map(|&i| labels[i]).collect();
        return (rows2, labels2);
    }
    (rows, labels)
}

/// Converts one APT field (restricted to `rows`) into an ML feature.
fn feature_column(apt: &Apt, field: usize, rows: &[u32]) -> FeatureColumn {
    match apt.fields[field].kind {
        AttrKind::Numeric => FeatureColumn::Numeric(
            rows.iter()
                .map(|&r| apt.columns[field].f64_at(r as usize).unwrap_or(f64::NAN))
                .collect(),
        ),
        AttrKind::Categorical => {
            // Dense codes over the observed values.
            let mut codes: HashMap<PatValue, u32> = HashMap::new();
            let data = rows
                .iter()
                .map(|&r| match apt.value(r as usize, field) {
                    Value::Null => u32::MAX,
                    v => {
                        let pv = PatValue::from_value(&v).expect("non-null");
                        let next = codes.len() as u32;
                        *codes.entry(pv).or_insert(next)
                    }
                })
                .collect();
            FeatureColumn::Categorical(data)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cajade_graph::JoinGraph;
    use cajade_query::{parse_sql, ProvenanceTable};
    use cajade_storage::{DataType, Database, SchemaBuilder};

    /// `signal` separates the two groups; `noise` does not; `dup` is a
    /// copy of `signal` (should cluster with it).
    fn fixture() -> (Database, cajade_query::Query) {
        let mut db = Database::new("fs");
        db.create_table(
            SchemaBuilder::new("t")
                .column_pk("id", DataType::Int, AttrKind::Categorical)
                .column("grp", DataType::Str, AttrKind::Categorical)
                .column("signal", DataType::Int, AttrKind::Numeric)
                .column("dup", DataType::Int, AttrKind::Numeric)
                .column("noise", DataType::Int, AttrKind::Numeric)
                .column("label_cat", DataType::Str, AttrKind::Categorical)
                .build(),
        )
        .unwrap();
        let g1 = db.intern("g1");
        let g2 = db.intern("g2");
        let a = db.intern("a");
        let b = db.intern("b");
        for i in 0..200i64 {
            let grp = if i % 2 == 0 { g1 } else { g2 };
            let signal = if i % 2 == 0 { i % 40 } else { 60 + i % 40 };
            let cat = if i % 2 == 0 { a } else { b };
            db.table_mut("t")
                .unwrap()
                .push_row(vec![
                    Value::Int(i),
                    Value::Str(grp),
                    Value::Int(signal),
                    Value::Int(signal * 2), // perfectly correlated copy
                    Value::Int((i * 7919) % 100),
                    Value::Str(cat),
                ])
                .unwrap();
        }
        let q = parse_sql("SELECT count(*) AS c, grp FROM t GROUP BY grp").unwrap();
        (db, q)
    }

    fn run(sel: SelAttr) -> (FeatureSelection, Apt, Database) {
        let (db, q) = fixture();
        let pt = ProvenanceTable::compute(&db, &q).unwrap();
        let apt = Apt::materialize(&db, &pt, &JoinGraph::pt_only()).unwrap();
        let question = Question::TwoPoint { t1: 0, t2: 1 };
        let fs = select_features(
            &apt,
            &pt,
            &question,
            &FeatSelConfig {
                sel_attr: sel,
                ..Default::default()
            },
        );
        (fs, apt, db)
    }

    #[test]
    fn signal_outranks_noise() {
        let (fs, apt, _db) = run(SelAttr::Count(2));
        let signal = apt.field_index("prov_t_signal").unwrap();
        let noise = apt.field_index("prov_t_noise").unwrap();
        assert!(fs.relevance[signal] > fs.relevance[noise]);
        let selected: Vec<usize> = fs
            .num_fields
            .iter()
            .chain(&fs.cat_fields)
            .copied()
            .collect();
        // `signal`, `dup`, and `label_cat` are mutually redundant (all
        // derived from the same separator); feature selection must keep a
        // representative of that family — which one is up to clustering.
        let family = [
            signal,
            apt.field_index("prov_t_dup").unwrap(),
            apt.field_index("prov_t_label__cat").unwrap(),
        ];
        assert!(
            selected.iter().any(|f| family.contains(f)),
            "selected {selected:?} misses the signal family {family:?}"
        );
        // The family representative carries (much) more relevance than
        // noise — noise may still fill the second Count(2) slot because
        // clustering collapsed the family to a single representative.
        let best_family = family
            .iter()
            .map(|&f| fs.relevance[f])
            .fold(0.0f64, f64::max);
        assert!(best_family > fs.relevance[noise] * 5.0);
    }

    #[test]
    fn correlated_duplicates_share_a_cluster() {
        let (fs, apt, _db) = run(SelAttr::All);
        let signal = apt.field_index("prov_t_signal").unwrap();
        let dup = apt.field_index("prov_t_dup").unwrap();
        let cluster_of = |f: usize| fs.clusters.iter().position(|c| c.contains(&f));
        assert_eq!(cluster_of(signal), cluster_of(dup));
        // And only one of them is selected.
        let both: Vec<bool> = [signal, dup]
            .iter()
            .map(|f| fs.num_fields.contains(f))
            .collect();
        assert!(both.iter().filter(|&&x| x).count() <= 1);
    }

    #[test]
    fn kinds_are_partitioned() {
        let (fs, apt, _db) = run(SelAttr::All);
        for &f in &fs.num_fields {
            assert_eq!(apt.fields[f].kind, AttrKind::Numeric);
        }
        for &f in &fs.cat_fields {
            assert_eq!(apt.fields[f].kind, AttrKind::Categorical);
        }
    }

    #[test]
    fn fraction_and_count_resolution() {
        assert_eq!(SelAttr::Count(3).resolve(10), 3);
        assert_eq!(SelAttr::Count(30).resolve(10), 10);
        assert_eq!(SelAttr::Fraction(0.25).resolve(10), 3); // ceil
        assert_eq!(SelAttr::Fraction(0.0).resolve(10), 1); // at least one
        assert_eq!(SelAttr::All.resolve(10), 10);
    }

    #[test]
    fn all_features_keeps_everything_but_group_by() {
        let (db, q) = fixture();
        let pt = ProvenanceTable::compute(&db, &q).unwrap();
        let apt = Apt::materialize(&db, &pt, &JoinGraph::pt_only()).unwrap();
        let fs = all_features(&apt);
        let total = fs.num_fields.len() + fs.cat_fields.len();
        assert_eq!(total, apt.pattern_fields().len());
        let _ = db;
    }
}
