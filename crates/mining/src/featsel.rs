//! Attribute clustering + relevance-based filtering (paper §3.1,
//! `filterAttrs` in Algorithm 1).
//!
//! 1. Train a random forest predicting "does this APT row belong to the
//!    provenance of `t1` (vs. `t2`)?" and rank attributes by
//!    mean-decrease-impurity relevance.
//! 2. Cluster mutually-correlated attributes (VARCLUS substitute, see
//!    `cajade-ml::cluster`) and keep one representative per cluster —
//!    the member with the highest relevance.
//! 3. Keep the λ#sel-attr most relevant representatives.

use std::collections::HashMap;

use cajade_graph::Apt;
use cajade_ml::cluster::{cluster_attributes, cluster_representatives};
use cajade_ml::correlation::assoc_matrix;
use cajade_ml::forest::{RandomForest, RandomForestConfig};
use cajade_ml::sampling::reservoir_sample;
use cajade_ml::FeatureColumn;
use cajade_query::ProvenanceTable;
use cajade_storage::{AttrKind, Value};

use crate::pattern::PatValue;
use crate::score::Question;

/// λ#sel-attr: how many attributes feature selection keeps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SelAttr {
    /// Keep the top `n` attributes (Table 1's default is 3).
    Count(usize),
    /// Keep the top fraction of attributes (the §3.1 formulation).
    Fraction(f64),
    /// Keep everything (feature selection as pure ranking).
    All,
}

impl SelAttr {
    fn resolve(&self, available: usize) -> usize {
        match self {
            SelAttr::Count(n) => (*n).min(available),
            SelAttr::Fraction(f) => ((available as f64 * f).ceil() as usize).clamp(1, available),
            SelAttr::All => available,
        }
    }
}

/// Result of `filterAttrs`.
#[derive(Debug, Clone)]
pub struct FeatureSelection {
    /// Selected numeric APT fields (`A_num` of Algorithm 1).
    pub num_fields: Vec<usize>,
    /// Selected categorical APT fields (`A_cat`).
    pub cat_fields: Vec<usize>,
    /// Attribute clusters found (over candidate fields).
    pub clusters: Vec<Vec<usize>>,
    /// Per-APT-field forest relevance (0 where not a candidate).
    pub relevance: Vec<f64>,
}

/// Configuration for feature selection.
#[derive(Debug, Clone)]
pub struct FeatSelConfig {
    /// λ#sel-attr.
    pub sel_attr: SelAttr,
    /// Minimum mutual association for clustering two attributes.
    pub cluster_threshold: f64,
    /// Number of forest trees.
    pub forest_trees: usize,
    /// Cap on training rows (runtime guard; sampled uniformly above it).
    pub max_train_rows: usize,
    /// Seed for forest + sampling.
    pub seed: u64,
}

impl Default for FeatSelConfig {
    fn default() -> Self {
        Self {
            sel_attr: SelAttr::Count(3),
            cluster_threshold: 0.9,
            forest_trees: 20,
            max_train_rows: 5000,
            seed: 0xFEA7,
        }
    }
}

/// Runs `filterAttrs` over an APT for a user question.
pub fn select_features(
    apt: &Apt,
    pt: &ProvenanceTable,
    question: &Question,
    cfg: &FeatSelConfig,
) -> FeatureSelection {
    let candidates = apt.pattern_fields();
    let relevance = vec![0.0; apt.fields.len()];

    if candidates.is_empty() {
        return FeatureSelection {
            num_fields: Vec::new(),
            cat_fields: Vec::new(),
            clusters: Vec::new(),
            relevance,
        };
    }

    // Training rows: APT rows in the question's scope, with binary labels.
    let (rows, labels) = training_rows(apt, pt, question, cfg);

    // Feature matrix over candidate fields.
    let features: Vec<FeatureColumn> = candidates
        .iter()
        .map(|&f| feature_column(apt, f, &rows))
        .collect();

    // Forest relevance (uniform fallback when a class is missing).
    let has_both = labels.iter().any(|&l| l) && labels.iter().any(|&l| !l);
    let importances: Vec<f64> = if has_both && !rows.is_empty() {
        let forest = RandomForest::fit(
            &features,
            &labels,
            &RandomForestConfig {
                num_trees: cfg.forest_trees,
                seed: cfg.seed,
                ..Default::default()
            },
        );
        forest.importances
    } else {
        vec![1.0 / candidates.len() as f64; candidates.len()]
    };
    finish_selection(apt, &candidates, importances, &features, cfg, relevance)
}

/// Question-independent `filterAttrs`: ranks attributes by their ability
/// to tell the query's output groups apart in general, rather than for
/// one specific `(t1, t2)` pair.
///
/// A one-vs-rest forest is trained for each of the up to
/// `MAX_ONE_VS_REST` (currently 4) largest output groups with the
/// overall tree budget split across them, and the
/// importances are averaged weighted by `|PT(t)|`. Clustering and
/// representative selection are shared with [`select_features`]. This is
/// what makes feature selection cacheable in a
/// [`PreparedApt`](crate::prepared::PreparedApt): the result depends only
/// on the APT and the parameters, so a *new* question on a warm APT skips
/// the phase entirely.
pub fn select_features_global(
    apt: &Apt,
    pt: &ProvenanceTable,
    cfg: &FeatSelConfig,
) -> FeatureSelection {
    /// Cap on one-vs-rest tasks, so wide group-bys don't multiply cost.
    const MAX_ONE_VS_REST: usize = 4;

    let candidates = apt.pattern_fields();
    let relevance = vec![0.0; apt.fields.len()];
    if candidates.is_empty() {
        return FeatureSelection {
            num_fields: Vec::new(),
            cat_fields: Vec::new(),
            clusters: Vec::new(),
            relevance,
        };
    }

    // Training rows: all APT rows, reservoir-capped; the feature matrix is
    // extracted once and shared by every one-vs-rest task.
    let mut rows: Vec<u32> = (0..apt.num_rows as u32).collect();
    if rows.len() > cfg.max_train_rows {
        let keep = reservoir_sample(rows.len(), cfg.max_train_rows, cfg.seed);
        rows = keep.into_iter().map(|i| rows[i]).collect();
    }
    let features: Vec<FeatureColumn> = candidates
        .iter()
        .map(|&f| feature_column(apt, f, &rows))
        .collect();
    let row_groups: Vec<u32> = rows
        .iter()
        .map(|&r| pt.group_of[apt.pt_row[r as usize] as usize])
        .collect();

    // The largest groups by full |PT(t)| (ties by index, deterministic).
    let mut groups: Vec<(usize, usize)> = pt
        .rows_of_group
        .iter()
        .enumerate()
        .map(|(g, rows)| (g, rows.len()))
        .filter(|&(_, n)| n > 0)
        .collect();
    groups.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    groups.truncate(MAX_ONE_VS_REST);

    // Both the tree budget and the per-tree row budget are split across
    // the one-vs-rest tasks, so the ensemble costs about as much as one
    // question-specific forest (whose training scope is a 2-group subset
    // of the APT) rather than `tasks ×` that.
    let tasks = groups.len().max(1);
    let trees_per_task = (cfg.forest_trees.div_ceil(tasks)).max(2);
    let bootstrap_fraction = 1.0 / tasks as f64;
    let total_weight: f64 = groups.iter().map(|&(_, n)| n as f64).sum();

    let mut importances = vec![0.0; candidates.len()];
    let mut any_task = false;
    for &(g, pt_size) in &groups {
        let labels: Vec<bool> = row_groups.iter().map(|&rg| rg as usize == g).collect();
        let has_both = labels.iter().any(|&l| l) && labels.iter().any(|&l| !l);
        if !has_both || rows.is_empty() {
            continue;
        }
        any_task = true;
        let forest = RandomForest::fit(
            &features,
            &labels,
            &RandomForestConfig {
                num_trees: trees_per_task,
                bootstrap_fraction,
                seed: cfg.seed.wrapping_add(g as u64),
                ..Default::default()
            },
        );
        let w = pt_size as f64 / total_weight.max(1.0);
        for (imp, fi) in importances.iter_mut().zip(&forest.importances) {
            *imp += w * fi;
        }
    }
    if !any_task {
        importances = vec![1.0 / candidates.len() as f64; candidates.len()];
    }

    finish_selection(apt, &candidates, importances, &features, cfg, relevance)
}

/// Shared tail of `filterAttrs`: correlation clustering, representative
/// picking, and λ#sel-attr ranking over forest importances.
fn finish_selection(
    apt: &Apt,
    candidates: &[usize],
    importances: Vec<f64>,
    features: &[FeatureColumn],
    cfg: &FeatSelConfig,
    mut relevance: Vec<f64>,
) -> FeatureSelection {
    for (&f, &imp) in candidates.iter().zip(&importances) {
        relevance[f] = imp;
    }

    // Cluster correlated attributes, keep one representative each.
    let assoc = assoc_matrix(features);
    let clusters_local = cluster_attributes(&assoc, cfg.cluster_threshold);
    let reps_local = cluster_representatives(&clusters_local, &importances);

    // Rank representatives by relevance, keep λ#sel-attr of them.
    let mut reps: Vec<usize> = reps_local.iter().map(|&l| candidates[l]).collect();
    reps.sort_by(|&a, &b| {
        relevance[b]
            .partial_cmp(&relevance[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let keep = cfg.sel_attr.resolve(reps.len());
    reps.truncate(keep);

    let clusters: Vec<Vec<usize>> = clusters_local
        .iter()
        .map(|c| c.iter().map(|&l| candidates[l]).collect())
        .collect();

    let (num_fields, cat_fields): (Vec<usize>, Vec<usize>) = reps
        .into_iter()
        .partition(|&f| apt.fields[f].kind == AttrKind::Numeric);

    FeatureSelection {
        num_fields,
        cat_fields,
        clusters,
        relevance,
    }
}

/// When feature selection is disabled, every pattern-eligible field is
/// kept (split by kind).
pub fn all_features(apt: &Apt) -> FeatureSelection {
    let candidates = apt.pattern_fields();
    let (num_fields, cat_fields) = candidates
        .into_iter()
        .partition(|&f| apt.fields[f].kind == AttrKind::Numeric);
    FeatureSelection {
        num_fields,
        cat_fields,
        clusters: Vec::new(),
        relevance: vec![0.0; apt.fields.len()],
    }
}

fn training_rows(
    apt: &Apt,
    pt: &ProvenanceTable,
    question: &Question,
    cfg: &FeatSelConfig,
) -> (Vec<u32>, Vec<bool>) {
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for r in 0..apt.num_rows {
        let g = pt.group_of[apt.pt_row[r] as usize] as usize;
        let label = match question {
            Question::TwoPoint { t1, t2 } => {
                if g == *t1 {
                    true
                } else if g == *t2 {
                    false
                } else {
                    continue;
                }
            }
            Question::SinglePoint { t } => g == *t,
        };
        rows.push(r as u32);
        labels.push(label);
    }
    if rows.len() > cfg.max_train_rows {
        let keep = reservoir_sample(rows.len(), cfg.max_train_rows, cfg.seed);
        let rows2: Vec<u32> = keep.iter().map(|&i| rows[i]).collect();
        let labels2: Vec<bool> = keep.iter().map(|&i| labels[i]).collect();
        return (rows2, labels2);
    }
    (rows, labels)
}

/// Converts one APT field (restricted to `rows`) into an ML feature.
fn feature_column(apt: &Apt, field: usize, rows: &[u32]) -> FeatureColumn {
    match apt.fields[field].kind {
        AttrKind::Numeric => FeatureColumn::Numeric(
            rows.iter()
                .map(|&r| apt.columns[field].f64_at(r as usize).unwrap_or(f64::NAN))
                .collect(),
        ),
        AttrKind::Categorical => {
            // Dense codes over the observed values.
            let mut codes: HashMap<PatValue, u32> = HashMap::new();
            let data = rows
                .iter()
                .map(|&r| match apt.value(r as usize, field) {
                    Value::Null => u32::MAX,
                    v => {
                        let pv = PatValue::from_value(&v).expect("non-null");
                        let next = codes.len() as u32;
                        *codes.entry(pv).or_insert(next)
                    }
                })
                .collect();
            FeatureColumn::Categorical(data)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cajade_graph::JoinGraph;
    use cajade_query::{parse_sql, ProvenanceTable};
    use cajade_storage::{DataType, Database, SchemaBuilder};

    /// `signal` separates the two groups; `noise` does not; `dup` is a
    /// copy of `signal` (should cluster with it).
    fn fixture() -> (Database, cajade_query::Query) {
        let mut db = Database::new("fs");
        db.create_table(
            SchemaBuilder::new("t")
                .column_pk("id", DataType::Int, AttrKind::Categorical)
                .column("grp", DataType::Str, AttrKind::Categorical)
                .column("signal", DataType::Int, AttrKind::Numeric)
                .column("dup", DataType::Int, AttrKind::Numeric)
                .column("noise", DataType::Int, AttrKind::Numeric)
                .column("label_cat", DataType::Str, AttrKind::Categorical)
                .build(),
        )
        .unwrap();
        let g1 = db.intern("g1");
        let g2 = db.intern("g2");
        let a = db.intern("a");
        let b = db.intern("b");
        for i in 0..200i64 {
            let grp = if i % 2 == 0 { g1 } else { g2 };
            let signal = if i % 2 == 0 { i % 40 } else { 60 + i % 40 };
            let cat = if i % 2 == 0 { a } else { b };
            db.table_mut("t")
                .unwrap()
                .push_row(vec![
                    Value::Int(i),
                    Value::Str(grp),
                    Value::Int(signal),
                    Value::Int(signal * 2), // perfectly correlated copy
                    Value::Int((i * 7919) % 100),
                    Value::Str(cat),
                ])
                .unwrap();
        }
        let q = parse_sql("SELECT count(*) AS c, grp FROM t GROUP BY grp").unwrap();
        (db, q)
    }

    fn run(sel: SelAttr) -> (FeatureSelection, Apt, Database) {
        let (db, q) = fixture();
        let pt = ProvenanceTable::compute(&db, &q).unwrap();
        let apt = Apt::materialize(&db, &pt, &JoinGraph::pt_only()).unwrap();
        let question = Question::TwoPoint { t1: 0, t2: 1 };
        let fs = select_features(
            &apt,
            &pt,
            &question,
            &FeatSelConfig {
                sel_attr: sel,
                ..Default::default()
            },
        );
        (fs, apt, db)
    }

    #[test]
    fn signal_outranks_noise() {
        let (fs, apt, _db) = run(SelAttr::Count(2));
        let signal = apt.field_index("prov_t_signal").unwrap();
        let noise = apt.field_index("prov_t_noise").unwrap();
        assert!(fs.relevance[signal] > fs.relevance[noise]);
        let selected: Vec<usize> = fs
            .num_fields
            .iter()
            .chain(&fs.cat_fields)
            .copied()
            .collect();
        // `signal`, `dup`, and `label_cat` are mutually redundant (all
        // derived from the same separator); feature selection must keep a
        // representative of that family — which one is up to clustering.
        let family = [
            signal,
            apt.field_index("prov_t_dup").unwrap(),
            apt.field_index("prov_t_label__cat").unwrap(),
        ];
        assert!(
            selected.iter().any(|f| family.contains(f)),
            "selected {selected:?} misses the signal family {family:?}"
        );
        // The family representative carries (much) more relevance than
        // noise — noise may still fill the second Count(2) slot because
        // clustering collapsed the family to a single representative.
        let best_family = family
            .iter()
            .map(|&f| fs.relevance[f])
            .fold(0.0f64, f64::max);
        assert!(best_family > fs.relevance[noise] * 5.0);
    }

    #[test]
    fn correlated_duplicates_share_a_cluster() {
        let (fs, apt, _db) = run(SelAttr::All);
        let signal = apt.field_index("prov_t_signal").unwrap();
        let dup = apt.field_index("prov_t_dup").unwrap();
        let cluster_of = |f: usize| fs.clusters.iter().position(|c| c.contains(&f));
        assert_eq!(cluster_of(signal), cluster_of(dup));
        // And only one of them is selected.
        let both: Vec<bool> = [signal, dup]
            .iter()
            .map(|f| fs.num_fields.contains(f))
            .collect();
        assert!(both.iter().filter(|&&x| x).count() <= 1);
    }

    #[test]
    fn kinds_are_partitioned() {
        let (fs, apt, _db) = run(SelAttr::All);
        for &f in &fs.num_fields {
            assert_eq!(apt.fields[f].kind, AttrKind::Numeric);
        }
        for &f in &fs.cat_fields {
            assert_eq!(apt.fields[f].kind, AttrKind::Categorical);
        }
    }

    #[test]
    fn fraction_and_count_resolution() {
        assert_eq!(SelAttr::Count(3).resolve(10), 3);
        assert_eq!(SelAttr::Count(30).resolve(10), 10);
        assert_eq!(SelAttr::Fraction(0.25).resolve(10), 3); // ceil
        assert_eq!(SelAttr::Fraction(0.0).resolve(10), 1); // at least one
        assert_eq!(SelAttr::All.resolve(10), 10);
    }

    #[test]
    fn all_features_keeps_everything_but_group_by() {
        let (db, q) = fixture();
        let pt = ProvenanceTable::compute(&db, &q).unwrap();
        let apt = Apt::materialize(&db, &pt, &JoinGraph::pt_only()).unwrap();
        let fs = all_features(&apt);
        let total = fs.num_fields.len() + fs.cat_fields.len();
        assert_eq!(total, apt.pattern_fields().len());
        let _ = db;
    }
}
