//! Diversity-aware top-k selection (paper §3.5).
//!
//! The first returned pattern is the one with the highest F-score; each
//! subsequent pick maximizes
//! `wscore(Φ) = Fscore(Φ) + min_{Φ'∈R} D(Φ, Φ')` where `D` averages a
//! per-attribute match score: `1` if the attribute is absent from `Φ'`,
//! `−0.3` if present with a different constant, `−2` if present with the
//! same constant.

use crate::pattern::Pattern;

/// Per-attribute match score between two patterns for an attribute
/// constrained in `phi` (paper's `matchscore(Φ, Φ', A)`).
pub fn match_score(phi: &Pattern, other: &Pattern, field: usize) -> f64 {
    let p = phi.pred_on(field).expect("field constrained in phi");
    match other.pred_on(field) {
        None => 1.0,
        Some(q) if q.value == p.value => -2.0,
        Some(_) => -0.3,
    }
}

/// `D(Φ, Φ')`: average match score over `Φ`'s constrained attributes,
/// in `[-2, 1]`. The empty pattern scores 0 by convention.
pub fn diversity_score(phi: &Pattern, other: &Pattern) -> f64 {
    if phi.is_empty() {
        return 0.0;
    }
    let sum: f64 = phi
        .preds()
        .iter()
        .map(|(f, _)| match_score(phi, other, *f))
        .sum();
    sum / phi.len() as f64
}

/// Selects up to `k` items by repeated `wscore` maximization. Each item is
/// `(pattern, f_score)`; returns indices into the input slice in selection
/// order.
pub fn select_top_k_diverse(items: &[(Pattern, f64)], k: usize) -> Vec<usize> {
    if items.is_empty() || k == 0 {
        return Vec::new();
    }
    let mut selected: Vec<usize> = Vec::with_capacity(k.min(items.len()));
    let mut remaining: Vec<usize> = (0..items.len()).collect();

    // First pick: highest F-score (ties → lowest index, deterministic).
    // `total_cmp` keeps this a total order even if an F-score is NaN —
    // with `partial_cmp(..).unwrap_or(Equal)` a NaN compared Equal to
    // everything, so which pattern won depended on scan order.
    let first = *remaining
        .iter()
        .max_by(|&&a, &&b| items[a].1.total_cmp(&items[b].1).then(b.cmp(&a)))
        .unwrap();
    selected.push(first);
    remaining.retain(|&i| i != first);

    // `min_div[i]` caches `min_{Φ'∈R} D(Φ_i, Φ')` incrementally: each new
    // pick updates every remaining candidate with one diversity
    // computation, so selection is O(k·n) diversity evaluations instead
    // of the O(k²·n) of recomputing the minimum from scratch per
    // comparison. The cached minimum is the same value, so the selection
    // (including tie-breaks) is unchanged.
    let mut min_div: Vec<f64> = items
        .iter()
        .map(|(pat, _)| diversity_score(pat, &items[first].0))
        .collect();

    while selected.len() < k && !remaining.is_empty() {
        let best = *remaining
            .iter()
            .max_by(|&&a, &&b| {
                let wa = items[a].1 + min_div[a];
                let wb = items[b].1 + min_div[b];
                wa.total_cmp(&wb).then(b.cmp(&a))
            })
            .unwrap();
        selected.push(best);
        remaining.retain(|&i| i != best);
        for &i in &remaining {
            min_div[i] = min_div[i].min(diversity_score(&items[i].0, &items[best].0));
        }
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{PatValue, Pred, PredOp};

    fn pat(preds: &[(usize, i64)]) -> Pattern {
        Pattern::from_preds(
            preds
                .iter()
                .map(|&(f, v)| {
                    (
                        f,
                        Pred {
                            op: PredOp::Eq,
                            value: PatValue::Int(v),
                        },
                    )
                })
                .collect(),
        )
    }

    #[test]
    fn match_score_cases() {
        let a = pat(&[(0, 1), (1, 2)]);
        let b_absent = pat(&[(2, 9)]);
        let b_diff = pat(&[(0, 5)]);
        let b_same = pat(&[(0, 1)]);
        assert_eq!(match_score(&a, &b_absent, 0), 1.0);
        assert_eq!(match_score(&a, &b_diff, 0), -0.3);
        assert_eq!(match_score(&a, &b_same, 0), -2.0);
    }

    #[test]
    fn diversity_bounds() {
        let a = pat(&[(0, 1), (1, 2)]);
        assert_eq!(diversity_score(&a, &a), -2.0); // identical
        let disjoint = pat(&[(5, 5)]);
        assert_eq!(diversity_score(&a, &disjoint), 1.0); // fully disjoint
        let mixed = pat(&[(0, 1), (9, 9)]); // same const on 0, absent on 1
        assert_eq!(diversity_score(&a, &mixed), (-2.0 + 1.0) / 2.0);
    }

    #[test]
    fn first_pick_is_highest_fscore() {
        let items = vec![
            (pat(&[(0, 1)]), 0.4),
            (pat(&[(1, 1)]), 0.9),
            (pat(&[(2, 1)]), 0.7),
        ];
        let sel = select_top_k_diverse(&items, 2);
        assert_eq!(sel[0], 1);
    }

    #[test]
    fn diversity_displaces_near_duplicates() {
        // Item 1 is a near-duplicate of item 0 (same constant on field 0)
        // with slightly lower F; item 2 is disjoint with lower F still.
        let items = vec![
            (pat(&[(0, 1)]), 0.90),
            (pat(&[(0, 1), (1, 2)]), 0.88),
            (pat(&[(5, 7)]), 0.40),
        ];
        let sel = select_top_k_diverse(&items, 2);
        assert_eq!(sel[0], 0);
        // wscore(1) = 0.88 + D(p1, p0) = 0.88 + (−2 + 1)/2 = 0.38
        // wscore(2) = 0.40 + 1.0 = 1.40 → the disjoint pattern wins.
        assert_eq!(sel[1], 2);
    }

    #[test]
    fn k_larger_than_input() {
        let items = vec![(pat(&[(0, 1)]), 0.5)];
        let sel = select_top_k_diverse(&items, 10);
        assert_eq!(sel, vec![0]);
        assert!(select_top_k_diverse(&[], 3).is_empty());
    }
}
