//! Columnar bitmap scoring engine for the mining hot loop.
//!
//! [`Scorer::score`](crate::score::Scorer::score) walks the APT row by row
//! through the interpreted [`Pattern::matches`] for every candidate
//! Algorithm 1 generates — thousands of scans per question. This module
//! replaces that with set-at-a-time evaluation:
//!
//! * a [`ScoreIndex`] is built **once** per `(APT, λ_F1 sample)`: the
//!   sample rows are sorted by `(output group, PT row)` and the pattern
//!   fields are gathered into dense typed arrays (`i64`/`f64` values,
//!   interned `u32` string codes — the global [`cajade_storage::StringPool`]
//!   already dictionary-encodes categoricals) with side null bitmaps;
//! * evaluating one predicate produces a [`Mask`] — a 64-bit-word bitmap
//!   over the sorted sample — and a pattern's matches are the AND of its
//!   predicate masks;
//! * Definition-7 TP/FP counting becomes segmented popcounts: each output
//!   group owns a contiguous position range, and distinct covered PT rows
//!   are counted by popcount (one APT row per PT row in the sample) or a
//!   segment-deduplicated bit walk (join fan-out duplicated PT rows).
//!
//! The refinement BFS in [`mine_apt`](crate::miner::mine_apt) carries each
//! pattern's mask and scores a refined child as
//! `parent_mask AND predicate_mask` + popcount, with the
//! `|num_fields| × λ#frag × 2` threshold predicate masks precomputed in a
//! [`PredBank`]. The engine returns metrics **bit-identical** to the
//! scalar [`Scorer`](crate::score::Scorer) (a property test enforces
//! this), so the scalar path remains a verified-equivalent fallback
//! selectable via [`ScoreEngine`].

use cajade_graph::Apt;
use cajade_query::ProvenanceTable;
use cajade_storage::Column;

use crate::pattern::{PatValue, Pattern, Pred, PredOp};
use crate::score::PatternMetrics;

/// Which scoring kernel the miner uses. Both produce bit-identical
/// [`PatternMetrics`]; the scalar path is kept as a verified fallback and
/// for environments where the index's memory is unwelcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScoreEngine {
    /// Row-at-a-time interpreted matching ([`crate::score::Scorer`]).
    Scalar,
    /// Columnar bitmap evaluation ([`ScoreIndex`]).
    Vectorized,
}

/// A fixed-width bitmap over the scan positions of a [`ScoreIndex`].
///
/// The trailing word is always tail-masked (bits past `len` are zero), so
/// popcounts never need a final correction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mask {
    words: Vec<u64>,
    len: usize,
}

impl Mask {
    /// All-zero mask of `len` bits.
    pub fn empty(len: usize) -> Mask {
        Mask {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// All-one mask of `len` bits (tail-masked).
    pub fn full(len: usize) -> Mask {
        let mut m = Mask {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        if !len.is_multiple_of(64) {
            if let Some(last) = m.words.last_mut() {
                *last &= (1u64 << (len % 64)) - 1;
            }
        }
        m
    }

    /// Number of addressable bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff the mask has zero bits of capacity.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Reads bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// `self ∧ other` as a new mask.
    pub fn and(&self, other: &Mask) -> Mask {
        debug_assert_eq!(self.len, other.len);
        Mask {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & b)
                .collect(),
            len: self.len,
        }
    }

    /// `self ∧= other` in place.
    pub fn and_assign(&mut self, other: &Mask) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// Removes every bit set in `other` (`self ∧= ¬other`).
    pub fn and_not_assign(&mut self, other: &Mask) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Total set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Set bits within `[start, end)`.
    pub fn count_ones_range(&self, start: usize, end: usize) -> usize {
        if start >= end {
            return 0;
        }
        let (sw, sb) = (start / 64, start % 64);
        let (ew, eb) = (end / 64, end % 64);
        let lo = u64::MAX << sb;
        if sw == ew {
            let hi = if eb == 0 { 0 } else { u64::MAX >> (64 - eb) };
            return (self.words[sw] & lo & hi).count_ones() as usize;
        }
        let mut n = (self.words[sw] & lo).count_ones() as usize;
        for w in &self.words[sw + 1..ew] {
            n += w.count_ones() as usize;
        }
        if eb != 0 {
            n += (self.words[ew] & (u64::MAX >> (64 - eb))).count_ones() as usize;
        }
        n
    }

    /// Approximate heap bytes (cache accounting).
    pub fn approx_bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// Calls `f` for each set bit index in `[start, end)`, ascending.
    #[inline]
    fn for_each_set_in(&self, start: usize, end: usize, mut f: impl FnMut(usize)) {
        if start >= end {
            return;
        }
        let sw = start / 64;
        let ew = (end - 1) / 64;
        for wi in sw..=ew {
            let mut w = self.words[wi];
            if wi == sw && !start.is_multiple_of(64) {
                w &= u64::MAX << (start % 64);
            }
            if wi == ew && !end.is_multiple_of(64) {
                w &= u64::MAX >> (64 - end % 64);
            }
            while w != 0 {
                let b = w.trailing_zeros() as usize;
                f(wi * 64 + b);
                w &= w - 1;
            }
        }
    }
}

/// One dictionary/typed-array encoded APT column, gathered in scan order.
#[derive(Debug, Clone)]
enum EncData {
    Int(Vec<i64>),
    Float(Vec<f64>),
    /// Interned string ids (the pool is the dictionary).
    Str(Vec<u32>),
}

#[derive(Debug, Clone)]
struct EncCol {
    data: EncData,
    /// Bit set ⇒ position is NULL. `None` when the column has no nulls.
    nulls: Option<Mask>,
}

/// A columnar scoring index over one APT and one (optional) λ_F1 row
/// sample. Owns copies of the encoded columns, so it stays valid (and
/// cacheable) independently of the APT it was built from.
#[derive(Debug, Clone)]
pub struct ScoreIndex {
    /// Scan positions → APT row, sorted by `(group, pt_row)`.
    order: Vec<u32>,
    /// Scan position → dense segment id (one segment per distinct PT row
    /// present in the scan; ids ascend along positions).
    seg_of: Vec<u32>,
    /// Per output group: `[start, end)` position range.
    group_ranges: Vec<(u32, u32)>,
    /// Fast path: every segment holds exactly one position (no join
    /// fan-out inside the sample), so counting = popcount.
    unit_segments: bool,
    /// Encoded columns, parallel to the APT's fields.
    cols: Vec<EncCol>,
    /// Full `|PT(t)|` per group (Definition 7 denominators — never
    /// shrunk by sampling or lossy joins).
    group_pt_counts: Vec<usize>,
    /// Total PT rows.
    total_pt: usize,
}

impl ScoreIndex {
    /// Builds an index over all APT rows (exact metrics).
    pub fn exact(apt: &Apt, pt: &ProvenanceTable) -> ScoreIndex {
        Self::build(apt, pt, None)
    }

    /// Builds an index over a fixed APT row sample (λ_F1-samp).
    pub fn sampled(apt: &Apt, pt: &ProvenanceTable, sample: &[u32]) -> ScoreIndex {
        Self::build(apt, pt, Some(sample))
    }

    fn build(apt: &Apt, pt: &ProvenanceTable, sample: Option<&[u32]>) -> ScoreIndex {
        let scan: Vec<u32> = match sample {
            Some(s) => s.to_vec(),
            None => (0..apt.num_rows as u32).collect(),
        };
        // Sort scan rows by (group, pt_row) so each group is a contiguous
        // position range and each distinct PT row a contiguous segment.
        let mut keyed: Vec<(u32, u32, u32)> = scan
            .iter()
            .map(|&r| {
                let p = apt.pt_row[r as usize];
                (pt.group_of[p as usize], p, r)
            })
            .collect();
        keyed.sort_by_key(|&(g, p, _)| (g, p));

        let n = keyed.len();
        let num_groups = pt.rows_of_group.len();
        let mut order = Vec::with_capacity(n);
        let mut seg_of = Vec::with_capacity(n);
        let mut group_ranges = vec![(0u32, 0u32); num_groups];
        let mut segs = 0u32;
        let mut cur_group = u32::MAX;
        let mut cur_pt = u32::MAX;
        for (i, &(g, p, r)) in keyed.iter().enumerate() {
            if i == 0 || p != cur_pt || g != cur_group {
                if i > 0 {
                    segs += 1;
                }
                cur_pt = p;
            }
            if g != cur_group {
                if cur_group != u32::MAX {
                    group_ranges[cur_group as usize].1 = i as u32;
                }
                if (g as usize) < num_groups {
                    group_ranges[g as usize].0 = i as u32;
                }
                cur_group = g;
            }
            order.push(r);
            seg_of.push(segs);
        }
        if cur_group != u32::MAX && (cur_group as usize) < num_groups {
            group_ranges[cur_group as usize].1 = n as u32;
        }
        let num_segs = if n == 0 { 0 } else { segs as usize + 1 };
        let unit_segments = num_segs == n;

        let cols = apt
            .columns
            .iter()
            .map(|c| encode_column(c, &order))
            .collect();

        ScoreIndex {
            order,
            seg_of,
            group_ranges,
            unit_segments,
            cols,
            group_pt_counts: pt.rows_of_group.iter().map(Vec::len).collect(),
            total_pt: pt.num_rows,
        }
    }

    /// Number of scan positions (bitmap width).
    pub fn scan_size(&self) -> usize {
        self.order.len()
    }

    /// Scan positions → APT row, sorted by `(output group, PT row)`. This
    /// is the canonical training order the histogram feature selection
    /// reuses, so index-backed and index-free callers see identical row
    /// sequences (see [`crate::featsel::hist_scan_order`]).
    pub fn order(&self) -> &[u32] {
        &self.order
    }

    /// Full `|PT(t)|` of one output group — the Definition-7 `a`
    /// denominator (never shrunk by sampling or lossy joins).
    pub fn group_size(&self, group: usize) -> usize {
        self.group_pt_counts.get(group).copied().unwrap_or(0)
    }

    /// Distinct covered PT rows of `mask` within `primary`'s segment —
    /// the TP count of [`Self::score_mask`] alone, without the FP side.
    /// The refinement BFS uses this on the precomputed [`PredBank`] masks
    /// to bound a child's achievable recall/F-score before materializing
    /// its mask.
    pub fn tp_of(&self, mask: &Mask, primary: usize) -> usize {
        let (ps, pe) = self
            .group_ranges
            .get(primary)
            .map(|&(s, e)| (s as usize, e as usize))
            .unwrap_or((0, 0));
        self.count_covered(mask, ps, pe)
    }

    /// All-one mask sized for this index (the empty pattern's matches).
    pub fn full_mask(&self) -> Mask {
        Mask::full(self.order.len())
    }

    /// Evaluates one predicate into a fresh mask over the scan positions.
    /// Semantics mirror [`Pattern::matches`] exactly: NULL never matches,
    /// `=` follows SQL equality (ints widen against floats, strings
    /// compare by interned id, cross-kind is false), `≤`/`≥` compare the
    /// numeric view and are false for strings.
    pub fn eval_pred(&self, field: usize, pred: &Pred) -> Mask {
        let col = &self.cols[field];
        let n = self.order.len();
        let mut out = Mask::empty(n);
        match (&col.data, pred.op) {
            (EncData::Int(vals), PredOp::Eq) => match pred.value {
                PatValue::Int(c) => fill(&mut out, vals, |&v| v == c),
                PatValue::Float(bits) => {
                    let t = f64::from_bits(bits);
                    fill(&mut out, vals, |&v| (v as f64) == t)
                }
                PatValue::Str(_) => {}
            },
            (EncData::Float(vals), PredOp::Eq) => match pred.value {
                PatValue::Int(c) => fill(&mut out, vals, |&v| v == c as f64),
                PatValue::Float(bits) => {
                    let t = f64::from_bits(bits);
                    fill(&mut out, vals, |&v| v == t)
                }
                PatValue::Str(_) => {}
            },
            (EncData::Str(vals), PredOp::Eq) => {
                if let PatValue::Str(id) = pred.value {
                    fill(&mut out, vals, |&v| v == id)
                }
            }
            (EncData::Str(_), PredOp::Le | PredOp::Ge) => {}
            (EncData::Int(vals), op) => {
                if let Some(t) = pred.value.as_f64() {
                    match op {
                        PredOp::Le => fill(&mut out, vals, |&v| (v as f64) <= t),
                        _ => fill(&mut out, vals, |&v| (v as f64) >= t),
                    }
                }
            }
            (EncData::Float(vals), op) => {
                if let Some(t) = pred.value.as_f64() {
                    match op {
                        PredOp::Le => fill(&mut out, vals, |&v| v <= t),
                        _ => fill(&mut out, vals, |&v| v >= t),
                    }
                }
            }
        }
        if let Some(nulls) = &col.nulls {
            out.and_not_assign(nulls);
        }
        out
    }

    /// The match mask of a whole pattern (AND of its predicate masks).
    pub fn pattern_mask(&self, pattern: &Pattern) -> Mask {
        let mut mask = self.full_mask();
        for (field, pred) in pattern.preds() {
            mask.and_assign(&self.eval_pred(*field, pred));
        }
        mask
    }

    /// Distinct covered PT rows (segments) among set bits in `[start, end)`.
    fn count_covered(&self, mask: &Mask, start: usize, end: usize) -> usize {
        if self.unit_segments {
            return mask.count_ones_range(start, end);
        }
        let mut count = 0usize;
        let mut last = u32::MAX;
        mask.for_each_set_in(start, end, |p| {
            let s = self.seg_of[p];
            if s != last {
                count += 1;
                last = s;
            }
        });
        count
    }

    /// Definition-7 metrics of a match mask for `primary` vs `secondary`
    /// (`None` ⇒ all other outputs). Bit-identical to
    /// [`Scorer::score`](crate::score::Scorer::score) on the same sample.
    pub fn score_mask(
        &self,
        mask: &Mask,
        primary: usize,
        secondary: Option<usize>,
    ) -> PatternMetrics {
        let n = self.order.len();
        let (ps, pe) = self
            .group_ranges
            .get(primary)
            .map(|&(s, e)| (s as usize, e as usize))
            .unwrap_or((0, 0));
        let tp = self.count_covered(mask, ps, pe);
        let a1 = self.group_pt_counts.get(primary).copied().unwrap_or(0);
        let (fp, a2) = match secondary {
            Some(s) => {
                let (ss, se) = self
                    .group_ranges
                    .get(s)
                    .map(|&(s, e)| (s as usize, e as usize))
                    .unwrap_or((0, 0));
                (
                    self.count_covered(mask, ss, se),
                    self.group_pt_counts.get(s).copied().unwrap_or(0),
                )
            }
            None => (self.count_covered(mask, 0, n) - tp, self.total_pt - a1),
        };
        PatternMetrics::from_counts(tp, a1, fp, a2)
    }

    /// Convenience: mask + score in one call.
    pub fn score(
        &self,
        pattern: &Pattern,
        primary: usize,
        secondary: Option<usize>,
    ) -> PatternMetrics {
        self.score_mask(&self.pattern_mask(pattern), primary, secondary)
    }

    /// Approximate heap bytes (cache accounting).
    pub fn approx_bytes(&self) -> usize {
        let n = self.order.len();
        let cols: usize = self
            .cols
            .iter()
            .map(|c| {
                (match &c.data {
                    EncData::Int(v) => v.len() * 8,
                    EncData::Float(v) => v.len() * 8,
                    EncData::Str(v) => v.len() * 4,
                }) + c.nulls.as_ref().map_or(0, Mask::approx_bytes)
            })
            .sum();
        n * (4 + 4) + self.group_ranges.len() * 8 + self.group_pt_counts.len() * 8 + cols
    }
}

#[inline]
fn fill<T>(out: &mut Mask, vals: &[T], pred: impl Fn(&T) -> bool) {
    for (i, v) in vals.iter().enumerate() {
        if pred(v) {
            out.set(i);
        }
    }
}

fn encode_column(col: &Column, order: &[u32]) -> EncCol {
    let mut nulls = None;
    let mut any = false;
    let data = match col {
        Column::Int { data, nulls: nm } => {
            let mut mask = Mask::empty(order.len());
            let gathered = order
                .iter()
                .enumerate()
                .map(|(i, &r)| {
                    if nm.is_null(r as usize) {
                        mask.set(i);
                        any = true;
                    }
                    data[r as usize]
                })
                .collect();
            if any {
                nulls = Some(mask);
            }
            EncData::Int(gathered)
        }
        Column::Float { data, nulls: nm } => {
            let mut mask = Mask::empty(order.len());
            let gathered = order
                .iter()
                .enumerate()
                .map(|(i, &r)| {
                    if nm.is_null(r as usize) {
                        mask.set(i);
                        any = true;
                    }
                    data[r as usize]
                })
                .collect();
            if any {
                nulls = Some(mask);
            }
            EncData::Float(gathered)
        }
        Column::Str { data, nulls: nm } => {
            let mut mask = Mask::empty(order.len());
            let gathered = order
                .iter()
                .enumerate()
                .map(|(i, &r)| {
                    if nm.is_null(r as usize) {
                        mask.set(i);
                        any = true;
                    }
                    data[r as usize].0
                })
                .collect();
            if any {
                nulls = Some(mask);
            }
            EncData::Str(gathered)
        }
    };
    EncCol { data, nulls }
}

/// Precomputed refinement predicate masks: for every selected numeric
/// field and fragment boundary, the `≤`/`≥` threshold masks
/// (`|num_fields| × λ#frag × 2` bitmaps). The refinement BFS scores a
/// child as `parent_mask AND bank.mask(..)` + popcount.
#[derive(Debug, Clone)]
pub struct PredBank {
    /// `per_field[i][b]` = `[≤ mask, ≥ mask]` for boundary `b` of the
    /// `i`-th fragmented field.
    per_field: Vec<Vec<[Mask; 2]>>,
}

impl PredBank {
    /// Builds the bank for `frag` (`(field, boundaries)` pairs, in the
    /// miner's refinement order).
    pub fn build(index: &ScoreIndex, frag: &[(usize, Vec<f64>)]) -> PredBank {
        let per_field = frag
            .iter()
            .map(|(field, boundaries)| {
                boundaries
                    .iter()
                    .map(|&c| {
                        [PredOp::Le, PredOp::Ge].map(|op| {
                            index.eval_pred(
                                *field,
                                &Pred {
                                    op,
                                    value: PatValue::Float(c.to_bits()),
                                },
                            )
                        })
                    })
                    .collect()
            })
            .collect();
        PredBank { per_field }
    }

    /// The precomputed mask of `frag[field_idx]`'s `boundary_idx`-th
    /// threshold under `op`.
    pub fn mask(&self, field_idx: usize, boundary_idx: usize, op: PredOp) -> &Mask {
        let slot = match op {
            PredOp::Le => 0,
            PredOp::Ge => 1,
            PredOp::Eq => unreachable!("refinements are threshold predicates"),
        };
        &self.per_field[field_idx][boundary_idx][slot]
    }

    /// Approximate heap bytes (cache accounting).
    pub fn approx_bytes(&self) -> usize {
        self.per_field
            .iter()
            .flat_map(|f| f.iter())
            .map(|pair| pair[0].approx_bytes() + pair[1].approx_bytes())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_full_is_tail_masked() {
        let m = Mask::full(70);
        assert_eq!(m.count_ones(), 70);
        assert_eq!(m.count_ones_range(0, 70), 70);
        assert_eq!(m.count_ones_range(64, 70), 6);
        assert_eq!(m.count_ones_range(3, 3), 0);
    }

    #[test]
    fn mask_range_counts() {
        let mut m = Mask::empty(200);
        for i in (0..200).step_by(3) {
            m.set(i);
        }
        let naive = |s: usize, e: usize| (s..e).filter(|&i| i % 3 == 0).count();
        for (s, e) in [(0, 200), (1, 199), (63, 65), (64, 128), (130, 131), (5, 5)] {
            assert_eq!(m.count_ones_range(s, e), naive(s, e), "[{s},{e})");
        }
    }

    #[test]
    fn mask_bit_walk_matches_get() {
        let mut m = Mask::empty(150);
        for i in [0, 1, 63, 64, 65, 127, 128, 149] {
            m.set(i);
        }
        let mut seen = Vec::new();
        m.for_each_set_in(1, 149, |i| seen.push(i));
        assert_eq!(seen, vec![1, 63, 64, 65, 127, 128]);
    }

    #[test]
    fn and_not_clears_null_positions() {
        let mut a = Mask::full(10);
        let mut nulls = Mask::empty(10);
        nulls.set(3);
        nulls.set(9);
        a.and_not_assign(&nulls);
        assert_eq!(a.count_ones(), 8);
        assert!(!a.get(3) && !a.get(9));
    }
}
