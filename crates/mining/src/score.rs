//! Pattern quality metrics — paper Definition 7.
//!
//! Coverage is defined at the level of **provenance tuples**, not APT
//! rows: `t' ∈ PT(Q,D,t)` is covered by `(Ω, Φ)` iff *some* APT row
//! extending `t'` matches `Φ`. The APT carries its `pt_row` back-pointers,
//! so evaluating a pattern is one scan that marks covered PT rows.
//!
//! The λ_F1-samp knob (§3.3) is implemented by scanning a fixed row
//! sample of the APT instead of the whole table; denominators (`|PT(t)|`)
//! are then the number of PT rows *represented in the sample*, keeping
//! precision/recall estimates consistent.

use std::collections::HashMap;

use cajade_graph::Apt;
use cajade_query::ProvenanceTable;

use crate::pattern::Pattern;

/// A user question (paper §2.4): compare two outputs, or one output
/// against all the rest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Question {
    /// Two-point: summarize what differentiates output `t1` from `t2`.
    TwoPoint {
        /// Primary output tuple (group index in the provenance table).
        t1: usize,
        /// Secondary output tuple.
        t2: usize,
    },
    /// Single-point: differentiate `t` from every other output.
    SinglePoint {
        /// The output tuple of interest.
        t: usize,
    },
}

impl Question {
    /// The two mining directions of Algorithm 1's `for t_cur ∈ {t1, t2}`
    /// loop: `(primary, secondary)` pairs, where `None` means "all other
    /// outputs" (single-point false-positive definition).
    pub fn directions(&self) -> Vec<(usize, Option<usize>)> {
        match self {
            Question::TwoPoint { t1, t2 } => vec![(*t1, Some(*t2)), (*t2, Some(*t1))],
            Question::SinglePoint { t } => vec![(*t, None)],
        }
    }
}

/// Definition-7 metrics of one explanation `(Ω, Φ)` for a primary output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PatternMetrics {
    /// Covered provenance tuples of the primary output (TP).
    pub tp: usize,
    /// Total provenance tuples of the primary output (TP + FN = `a1`).
    pub a1: usize,
    /// Covered provenance tuples of the secondary output (FP).
    pub fp: usize,
    /// Total provenance tuples of the secondary output (`a2`).
    pub a2: usize,
    /// `TP / (TP + FP)`.
    pub precision: f64,
    /// `TP / (TP + FN)`.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f_score: f64,
}

impl PatternMetrics {
    /// Builds the derived precision/recall/F-score from raw counts. Both
    /// scoring engines (scalar and vectorized) funnel through this one
    /// function, so equal counts guarantee bit-identical metrics.
    pub(crate) fn from_counts(tp: usize, a1: usize, fp: usize, a2: usize) -> Self {
        let precision = if tp + fp == 0 {
            0.0
        } else {
            tp as f64 / (tp + fp) as f64
        };
        let recall = if a1 == 0 { 0.0 } else { tp as f64 / a1 as f64 };
        let f_score = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        PatternMetrics {
            tp,
            a1,
            fp,
            a2,
            precision,
            recall,
            f_score,
        }
    }

    /// Paper-style relative support string: `(tp/a1 vs fp/a2)`.
    pub fn support_string(&self) -> String {
        format!("({}/{} vs {}/{})", self.tp, self.a1, self.fp, self.a2)
    }
}

/// A prepared scorer for one APT: owns the (optional) F-score sample and
/// the per-group PT-row bookkeeping so that scoring a pattern is a single
/// scan.
pub struct Scorer<'a> {
    apt: &'a Apt,
    /// APT rows to scan (`None` ⇒ all rows).
    rows: Option<Vec<u32>>,
    /// PT row → group.
    group_of: &'a [u32],
    /// Per group: number of distinct PT rows in scope (the `a` denominators).
    group_pt_counts: HashMap<u32, usize>,
    /// Total distinct PT rows in scope (for single-point "rest").
    total_pt: usize,
    /// Scratch: covered marker per PT row, versioned to avoid clearing.
    stamp: std::cell::RefCell<(Vec<u32>, u32)>,
}

impl<'a> Scorer<'a> {
    /// Scorer over the full APT (exact metrics).
    pub fn exact(apt: &'a Apt, pt: &'a ProvenanceTable) -> Self {
        Self::build(apt, pt, None)
    }

    /// Scorer over a fixed sample of APT row indices (λ_F1-samp).
    pub fn sampled(apt: &'a Apt, pt: &'a ProvenanceTable, sample: Vec<u32>) -> Self {
        Self::build(apt, pt, Some(sample))
    }

    fn build(apt: &'a Apt, pt: &'a ProvenanceTable, rows: Option<Vec<u32>>) -> Self {
        // Definition 7's denominators are |PT(Q, D, t)| — the FULL
        // provenance of each output tuple, independent of how many PT rows
        // the join graph (or the F1 sample) happens to extend. A join that
        // drops provenance rows lowers recall; it must not shrink `a`.
        let mut group_pt_counts: HashMap<u32, usize> = HashMap::new();
        for (g, rows_of_g) in pt.rows_of_group.iter().enumerate() {
            group_pt_counts.insert(g as u32, rows_of_g.len());
        }
        Scorer {
            apt,
            rows,
            group_of: &pt.group_of,
            group_pt_counts,
            total_pt: pt.num_rows,
            stamp: std::cell::RefCell::new((vec![0; pt.num_rows], 0)),
        }
    }

    /// Number of APT rows the scorer scans per pattern.
    pub fn scan_size(&self) -> usize {
        self.rows.as_ref().map_or(self.apt.num_rows, |r| r.len())
    }

    /// `|PT(t)|` within scope.
    pub fn group_size(&self, group: usize) -> usize {
        self.group_pt_counts
            .get(&(group as u32))
            .copied()
            .unwrap_or(0)
    }

    /// Scores `pattern` for `primary` against `secondary`
    /// (`None` ⇒ all other outputs, the single-point variant).
    pub fn score(
        &self,
        pattern: &Pattern,
        primary: usize,
        secondary: Option<usize>,
    ) -> PatternMetrics {
        let mut stamp = self.stamp.borrow_mut();
        let (marks, version) = &mut *stamp;
        *version += 1;
        let v = *version;

        let mut tp = 0usize;
        let mut fp = 0usize;
        let primary = primary as u32;

        let mut visit = |apt_row: usize| {
            if !pattern.matches(self.apt, apt_row) {
                return;
            }
            let pt_row = self.apt.pt_row[apt_row] as usize;
            if marks[pt_row] == v {
                return; // PT row already counted for this pattern
            }
            marks[pt_row] = v;
            let g = self.group_of[pt_row];
            if g == primary {
                tp += 1;
            } else {
                match secondary {
                    Some(s) if g == s as u32 => fp += 1,
                    Some(_) => {}
                    None => fp += 1, // single-point: everything else is FP
                }
            }
        };

        match &self.rows {
            Some(sample) => {
                for &r in sample {
                    visit(r as usize);
                }
            }
            None => {
                for r in 0..self.apt.num_rows {
                    visit(r);
                }
            }
        }

        let a1 = self.group_size(primary as usize);
        let a2 = match secondary {
            Some(s) => self.group_size(s),
            None => self.total_pt - a1,
        };
        PatternMetrics::from_counts(tp, a1, fp, a2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{PatValue, Pattern, Pred, PredOp};
    use cajade_graph::{Apt, JoinGraph};
    use cajade_query::{parse_sql, ProvenanceTable};
    use cajade_storage::{AttrKind, DataType, Database, SchemaBuilder, Value};

    /// 3 groups: g1 (4 rows), g2 (4 rows), g3 (2 rows); attribute `x`
    /// separates g1 (x small) from g2 (x large).
    fn fixture() -> (Database, cajade_query::Query) {
        let mut db = Database::new("s");
        db.create_table(
            SchemaBuilder::new("t")
                .column_pk("id", DataType::Int, AttrKind::Categorical)
                .column("grp", DataType::Str, AttrKind::Categorical)
                .column("x", DataType::Int, AttrKind::Numeric)
                .build(),
        )
        .unwrap();
        let g1 = db.intern("g1");
        let g2 = db.intern("g2");
        let g3 = db.intern("g3");
        let rows = [
            (1, g1, 1),
            (2, g1, 2),
            (3, g1, 3),
            (4, g1, 10), // one g1 outlier
            (5, g2, 11),
            (6, g2, 12),
            (7, g2, 13),
            (8, g2, 2), // one g2 outlier
            (9, g3, 100),
            (10, g3, 100),
        ];
        for (id, g, x) in rows {
            db.table_mut("t")
                .unwrap()
                .push_row(vec![Value::Int(id), Value::Str(g), Value::Int(x)])
                .unwrap();
        }
        let q = parse_sql("SELECT count(*) AS c, grp FROM t GROUP BY grp").unwrap();
        (db, q)
    }

    fn groups(db: &Database, q: &cajade_query::Query, pt: &ProvenanceTable) -> (usize, usize) {
        (
            pt.find_group(db, q, &[("grp", "g1")]).unwrap(),
            pt.find_group(db, q, &[("grp", "g2")]).unwrap(),
        )
    }

    #[test]
    fn definition7_counts() {
        let (db, q) = fixture();
        let pt = ProvenanceTable::compute(&db, &q).unwrap();
        let apt = Apt::materialize(&db, &pt, &JoinGraph::pt_only()).unwrap();
        let (g1, g2) = groups(&db, &q, &pt);
        let x = apt.field_index("prov_t_x").unwrap();
        let scorer = Scorer::exact(&apt, &pt);

        // x ≤ 3 covers 3 of g1's 4 rows and 1 of g2's 4 rows.
        let p = Pattern::from_preds(vec![(
            x,
            Pred {
                op: PredOp::Le,
                value: PatValue::Int(3),
            },
        )]);
        let m = scorer.score(&p, g1, Some(g2));
        assert_eq!((m.tp, m.a1, m.fp, m.a2), (3, 4, 1, 4));
        assert!((m.precision - 0.75).abs() < 1e-12);
        assert!((m.recall - 0.75).abs() < 1e-12);
        assert!((m.f_score - 0.75).abs() < 1e-12);
        assert_eq!(m.support_string(), "(3/4 vs 1/4)");
    }

    #[test]
    fn asymmetry_of_directions() {
        let (db, q) = fixture();
        let pt = ProvenanceTable::compute(&db, &q).unwrap();
        let apt = Apt::materialize(&db, &pt, &JoinGraph::pt_only()).unwrap();
        let (g1, g2) = groups(&db, &q, &pt);
        let x = apt.field_index("prov_t_x").unwrap();
        let scorer = Scorer::exact(&apt, &pt);
        let p = Pattern::from_preds(vec![(
            x,
            Pred {
                op: PredOp::Ge,
                value: PatValue::Int(11),
            },
        )]);
        let m12 = scorer.score(&p, g1, Some(g2));
        let m21 = scorer.score(&p, g2, Some(g1));
        assert_eq!(m12.tp, 0);
        assert_eq!(m21.tp, 3);
        assert!(m21.f_score > m12.f_score);
    }

    #[test]
    fn single_point_uses_rest_as_negatives() {
        let (db, q) = fixture();
        let pt = ProvenanceTable::compute(&db, &q).unwrap();
        let apt = Apt::materialize(&db, &pt, &JoinGraph::pt_only()).unwrap();
        let g1 = pt.find_group(&db, &q, &[("grp", "g1")]).unwrap();
        let x = apt.field_index("prov_t_x").unwrap();
        let scorer = Scorer::exact(&apt, &pt);
        // x ≤ 3 covers 3 g1-rows, 1 g2-row, 0 g3-rows; a2 = 6 (rest).
        let p = Pattern::from_preds(vec![(
            x,
            Pred {
                op: PredOp::Le,
                value: PatValue::Int(3),
            },
        )]);
        let m = scorer.score(&p, g1, None);
        assert_eq!((m.tp, m.a1, m.fp, m.a2), (3, 4, 1, 6));
    }

    #[test]
    fn multiple_apt_extensions_count_once() {
        // Join that fans out: each PT row extends to 3 APT rows; covering
        // any of them covers the PT row exactly once (Definition 7(a)).
        let (mut db, q) = fixture();
        db.create_table(
            SchemaBuilder::new("ctx")
                .column_pk("id", DataType::Int, AttrKind::Categorical)
                .column_pk("copy", DataType::Int, AttrKind::Categorical)
                .column("y", DataType::Int, AttrKind::Numeric)
                .build(),
        )
        .unwrap();
        for id in 1..=10 {
            for copy in 0..3 {
                db.table_mut("ctx")
                    .unwrap()
                    .push_row(vec![Value::Int(id), Value::Int(copy), Value::Int(copy)])
                    .unwrap();
            }
        }
        let pt = ProvenanceTable::compute(&db, &q).unwrap();
        let mut g = JoinGraph::pt_only();
        g.nodes.push(cajade_graph::JgNode {
            label: cajade_graph::NodeLabel::Rel("ctx".into()),
        });
        g.edges.push(cajade_graph::JgEdge {
            from: 0,
            to: 1,
            cond: cajade_graph::JoinCond::on(&[("id", "id")]),
            schema_edge: 0,
            cond_idx: 0,
            pt_from_idx: Some(0),
        });
        let apt = Apt::materialize(&db, &pt, &g).unwrap();
        assert_eq!(apt.num_rows, 30);
        let (g1, g2) = groups(&db, &q, &pt);
        let scorer = Scorer::exact(&apt, &pt);
        // y ≥ 0 matches all three extensions of every PT row → still full
        // coverage, not triple.
        let y = apt.field_index("ctx.y").unwrap();
        let p = Pattern::from_preds(vec![(
            y,
            Pred {
                op: PredOp::Ge,
                value: PatValue::Int(0),
            },
        )]);
        let m = scorer.score(&p, g1, Some(g2));
        assert_eq!((m.tp, m.a1, m.fp, m.a2), (4, 4, 4, 4));
        // y ≥ 2 matches exactly one extension per PT row → same coverage.
        let p2 = Pattern::from_preds(vec![(
            y,
            Pred {
                op: PredOp::Ge,
                value: PatValue::Int(2),
            },
        )]);
        let m2 = scorer.score(&p2, g1, Some(g2));
        assert_eq!(m2.tp, 4);
    }

    #[test]
    fn sampled_scorer_keeps_full_denominators() {
        let (db, q) = fixture();
        let pt = ProvenanceTable::compute(&db, &q).unwrap();
        let apt = Apt::materialize(&db, &pt, &JoinGraph::pt_only()).unwrap();
        let (g1, g2) = groups(&db, &q, &pt);
        // Sample only the first 5 APT rows (g1's 4 + g2's first); the
        // `a` denominators stay |PT(t)| per Definition 7.
        let scorer = Scorer::sampled(&apt, &pt, vec![0, 1, 2, 3, 4]);
        assert_eq!(scorer.scan_size(), 5);
        assert_eq!(scorer.group_size(g1), 4);
        assert_eq!(scorer.group_size(g2), 4);
        let m = scorer.score(&Pattern::empty(), g1, Some(g2));
        assert_eq!((m.tp, m.a1, m.fp, m.a2), (4, 4, 1, 4));
    }

    #[test]
    fn lossy_join_lowers_recall_not_denominator() {
        // A context table matching only half the PT rows: uncovered PT
        // rows count as FN (Definition 7(d)), so recall < 1 even for the
        // empty pattern over the APT.
        let (mut db, q) = fixture();
        db.create_table(
            SchemaBuilder::new("half")
                .column_pk("id", DataType::Int, AttrKind::Categorical)
                .column("z", DataType::Int, AttrKind::Numeric)
                .build(),
        )
        .unwrap();
        for id in [1i64, 2, 5, 6] {
            db.table_mut("half")
                .unwrap()
                .push_row(vec![Value::Int(id), Value::Int(0)])
                .unwrap();
        }
        let pt = ProvenanceTable::compute(&db, &q).unwrap();
        let mut g = JoinGraph::pt_only();
        g.nodes.push(cajade_graph::JgNode {
            label: cajade_graph::NodeLabel::Rel("half".into()),
        });
        g.edges.push(cajade_graph::JgEdge {
            from: 0,
            to: 1,
            cond: cajade_graph::JoinCond::on(&[("id", "id")]),
            schema_edge: 0,
            cond_idx: 0,
            pt_from_idx: Some(0),
        });
        let apt = Apt::materialize(&db, &pt, &g).unwrap();
        let (g1, g2) = groups(&db, &q, &pt);
        let scorer = Scorer::exact(&apt, &pt);
        let m = scorer.score(&Pattern::empty(), g1, Some(g2));
        // g1 rows with ids 1,2,3,4 — only 1,2 joined; a1 stays 4.
        assert_eq!((m.tp, m.a1), (2, 4));
        assert!((m.recall - 0.5).abs() < 1e-12);
        // g2 rows ids 5..8 — 5,6 joined.
        assert_eq!((m.fp, m.a2), (2, 4));
    }

    #[test]
    fn empty_groups_yield_zero_scores() {
        let (db, q) = fixture();
        let pt = ProvenanceTable::compute(&db, &q).unwrap();
        let apt = Apt::materialize(&db, &pt, &JoinGraph::pt_only()).unwrap();
        let scorer = Scorer::exact(&apt, &pt);
        // Group index 99 does not exist.
        let m = scorer.score(&Pattern::empty(), 99, Some(0));
        assert_eq!(m.tp, 0);
        assert_eq!(m.recall, 0.0);
        assert_eq!(m.f_score, 0.0);
    }
}
