//! `MineAPT` — paper Algorithm 1, end to end for one join graph's APT.
//!
//! Phases (each timed; the names match the paper's runtime-breakdown
//! tables, Fig. 7/9):
//!
//! 1. *Feature Selection* — `filterAttrs` (random forest + clustering).
//! 2. *Gen. Pat. Cand.* — LCA over a λ_pat-samp sample (cap 1000 rows,
//!    §5.4), candidates ranked by recall, top k_cat kept.
//! 3. *Sampling for F1* — draw the λ_F1-samp APT row sample.
//! 4. *F-score Calc.* — Definition-7 metrics over the sample.
//! 5. *Refine Patterns* — numeric refinements from λ#frag fragment
//!    boundaries, pruning refinements of patterns whose recall is below
//!    λ_recall (sound by Proposition 3.1), with at most λ_attrNum numeric
//!    predicates per pattern.
//!
//! Final selection is diversity-aware top-k (§3.5) followed by exact
//! re-scoring on the full APT so reported supports are exact.

use std::collections::{HashMap, VecDeque};
use std::time::{Duration, Instant};

use cajade_graph::Apt;
use cajade_ml::sampling::{bernoulli_sample, sample_with_cap};
use cajade_query::ProvenanceTable;

use crate::diversity::select_top_k_diverse;
use crate::engine::{Mask, PredBank, ScoreEngine, ScoreIndex};
use crate::featsel::{
    all_features, hist_scan_order, select_features, select_features_global, select_features_hist,
    select_features_hist_global, FeatSelConfig, FeatSelEngine, FeatureSelection, SelAttr,
};
use crate::fragments::fragment_boundaries;
use crate::lca::lca_candidates;
use crate::pattern::{PatValue, Pattern, Pred, PredOp};
use crate::score::{PatternMetrics, Question, Scorer};
use crate::stats::{ColumnStatsProvider, NoSharedStats};

/// All tuning knobs of Algorithm 1 (defaults follow Table 1 where the
/// paper lists a value).
#[derive(Debug, Clone)]
pub struct MiningParams {
    /// k: how many explanations to return per join graph.
    pub top_k: usize,
    /// Number of LCA candidates kept after recall ranking (`pickTopK`).
    pub k_cat_patterns: usize,
    /// Limit on categorical attributes per pattern (Algorithm 1's k_cat).
    pub max_cat_attrs: usize,
    /// λ_attrNum: max numeric attributes per pattern (Table 1: 3).
    pub lambda_attr_num: usize,
    /// λ_recall: recall threshold below which patterns are dropped and
    /// their refinements pruned.
    pub lambda_recall: f64,
    /// λ_pat-samp: LCA sample rate (Table 1: 0.1).
    pub lambda_pat_samp: f64,
    /// LCA sample cap in rows (§5.4: 1000).
    pub pat_samp_cap: usize,
    /// λ_F1-samp: F-score sample rate (Table 1: 0.3). `≥ 1.0` disables
    /// sampling.
    pub lambda_f1_samp: f64,
    /// λ#frag: number of fragment boundaries per numeric attribute.
    pub num_frags: usize,
    /// λ#sel-attr (Table 1: 3).
    pub sel_attr: SelAttr,
    /// Enable feature selection (the Fig. 7 "w/o feature sel." column
    /// disables it).
    pub feature_selection: bool,
    /// Attribute-cluster association threshold.
    pub cluster_threshold: f64,
    /// Random-forest size for feature selection.
    pub forest_trees: usize,
    /// Safety cap on evaluated patterns per APT (guards pathological
    /// parameter combinations; generous relative to real workloads).
    pub max_patterns: usize,
    /// Automatically exclude attributes that functionally determine the
    /// question's groups on this APT (the paper's §6.2/§8 future-work
    /// item: patterns like `season_id = 4` merely restate the grouped
    /// season through an FD). One extra APT scan per attribute.
    pub exclude_fd_attrs: bool,
    /// Attribute-name substrings to exclude from patterns. CaJaDE is an
    /// interactive tool and the paper curates case-study output by hand
    /// (§6: removing trivial variants; §6.2 notes attributes that merely
    /// restate the group through functional dependencies "cannot be
    /// avoided" automatically) — this knob lets a user ban such
    /// attributes, e.g. `["season__id", "season_name"]` for Q1.
    pub banned_attrs: Vec<String>,
    /// RNG seed (sampling, forest).
    pub seed: u64,
    /// Which scoring kernel evaluates patterns. Both engines return
    /// bit-identical metrics (property-tested); `Scalar` keeps the
    /// row-at-a-time [`Scorer`] as a verified fallback.
    pub engine: ScoreEngine,
    /// Which forest trainer runs feature selection. Both engines use the
    /// same trainer (the choice is orthogonal to `engine`), so scalar and
    /// vectorized runs stay bit-identical.
    pub featsel_engine: FeatSelEngine,
    /// F-score upper-bound pruning in the refinement BFS (vectorized
    /// engine only): a lattice child is skipped — mask never built,
    /// never scored — when `min(tp_parent, tp_pred)` caps its recall at
    /// ≤ λ_recall in every direction (it could neither be kept nor seed a
    /// keepable refinement, by Proposition 3.1's anti-monotonicity), or,
    /// for `top_k = 1`, when its F-score bound `2·tp_ub/(tp_ub + a1)`
    /// cannot beat the best kept F-score so far. Output-invariant by
    /// construction (property-tested) as long as `max_patterns` does not
    /// bind; [`MiningTimings::ub_pruned_children`] counts the skips.
    pub refine_ub_prune: bool,
}

impl Default for MiningParams {
    fn default() -> Self {
        Self {
            top_k: 10,
            k_cat_patterns: 30,
            max_cat_attrs: 3,
            lambda_attr_num: 3,
            lambda_recall: 0.2,
            lambda_pat_samp: 0.1,
            pat_samp_cap: 1000,
            lambda_f1_samp: 0.3,
            num_frags: 6,
            sel_attr: SelAttr::Count(3),
            feature_selection: true,
            cluster_threshold: 0.9,
            forest_trees: 20,
            max_patterns: 200_000,
            exclude_fd_attrs: false,
            banned_attrs: Vec::new(),
            seed: 0xCA7ADE,
            engine: ScoreEngine::Vectorized,
            featsel_engine: FeatSelEngine::Histogram,
            refine_ub_prune: true,
        }
    }
}

/// Per-phase wall-clock timings (the paper's breakdown rows) plus the
/// refinement-BFS pruning counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct MiningTimings {
    /// `Feature Selection` row.
    pub feature_selection: Duration,
    /// `Gen. Pat. Cand.` row.
    pub gen_pat_cand: Duration,
    /// `Sampling for F1` row.
    pub sampling_for_f1: Duration,
    /// `F-score Calc.` row.
    pub fscore_calc: Duration,
    /// `Refine Patterns` row.
    pub refine_patterns: Duration,
    /// Column encoding + predicate-bitmap precomputation (the vectorized
    /// engine's `ScoreIndex`/`PredBank` build; zero on the scalar path and
    /// on warm `PreparedApt` asks).
    pub prepare: Duration,
    /// Lattice children skipped by the F-score upper bound before their
    /// mask was built or scored ([`MiningParams::refine_ub_prune`]).
    pub ub_pruned_children: u64,
    /// Subtrees cut after scoring because the pattern's best recall fell
    /// to ≤ λ_recall (the Proposition-3.1 prune; the pattern itself *was*
    /// evaluated).
    pub recall_pruned_subtrees: u64,
    /// Times a mining phase stopped early because the request budget
    /// expired (see `cajade_obs::budget`). Zero on unbudgeted asks.
    pub budget_stopped: u64,
}

impl MiningTimings {
    /// Sum of all phases.
    pub fn total(&self) -> Duration {
        self.feature_selection
            + self.gen_pat_cand
            + self.sampling_for_f1
            + self.fscore_calc
            + self.refine_patterns
            + self.prepare
    }

    /// Accumulates another APT's timings and counters (per-query totals).
    pub fn accumulate(&mut self, other: &MiningTimings) {
        self.feature_selection += other.feature_selection;
        self.gen_pat_cand += other.gen_pat_cand;
        self.sampling_for_f1 += other.sampling_for_f1;
        self.fscore_calc += other.fscore_calc;
        self.refine_patterns += other.refine_patterns;
        self.prepare += other.prepare;
        self.ub_pruned_children += other.ub_pruned_children;
        self.recall_pruned_subtrees += other.recall_pruned_subtrees;
        self.budget_stopped += other.budget_stopped;
    }
}

/// One mined explanation: `(Ω, Φ, (x1,a1), (x2,a2))` of Definition 6,
/// with Ω implied by the APT it was mined from.
#[derive(Debug, Clone)]
pub struct MinedExplanation {
    /// The pattern Φ.
    pub pattern: Pattern,
    /// The primary output tuple (the `[t1]` / `[t2]` marker of Table 4).
    pub primary_group: usize,
    /// The secondary output (None = "all other outputs", single-point).
    pub secondary_group: Option<usize>,
    /// Exact metrics over the full APT (support is `(tp/a1 vs fp/a2)`).
    pub metrics: PatternMetrics,
    /// F-score estimated on the λ_F1-samp sample (what the ranking used).
    pub sampled_f_score: f64,
}

/// Output of [`mine_apt`].
#[derive(Debug, Clone)]
pub struct MiningOutcome {
    /// Top-k explanations in diversity-selection order.
    pub explanations: Vec<MinedExplanation>,
    /// Phase timings.
    pub timings: MiningTimings,
    /// The feature selection used (for inspection / the Fig. 7 ablation).
    pub feature_selection: FeatureSelection,
    /// Number of patterns whose metrics were evaluated.
    pub patterns_evaluated: usize,
}

/// Runs Algorithm 1 over one APT.
pub fn mine_apt(
    apt: &Apt,
    pt: &ProvenanceTable,
    question: &Question,
    params: &MiningParams,
) -> MiningOutcome {
    let mut timings = MiningTimings::default();

    // ---- Phase 3 (done early; the scorer is needed for ranking and the
    // histogram feature selection reuses the index's encoding): F1 sample
    // + engine-specific scoring state.
    let t0 = Instant::now();
    let sample: Option<Vec<u32>> = {
        let _span = cajade_obs::span_detail("sampling_for_f1");
        let _mem = cajade_obs::AllocScope::enter("sampling_for_f1");
        if params.lambda_f1_samp >= 1.0 {
            None
        } else {
            Some(
                bernoulli_sample(apt.num_rows, params.lambda_f1_samp, params.seed)
                    .into_iter()
                    .map(|i| i as u32)
                    .collect(),
            )
        }
    };
    timings.sampling_for_f1 = t0.elapsed();

    let t0 = Instant::now();
    let index = {
        let _span = cajade_obs::span_detail("score_index");
        let _mem = cajade_obs::AllocScope::enter("score_index");
        match params.engine {
            ScoreEngine::Scalar => None,
            ScoreEngine::Vectorized => Some(match &sample {
                Some(rows) => ScoreIndex::sampled(apt, pt, rows),
                None => ScoreIndex::exact(apt, pt),
            }),
        }
    };
    timings.prepare += t0.elapsed();

    // ---- Phase 1: feature selection (filterAttrs). ---------------------
    // The one-shot path never shares statistics across graphs: it mines
    // one APT per call, so the pass-through provider keeps its output
    // bit-identical to the historical per-APT computation.
    let t0 = Instant::now();
    let featsel_span = cajade_obs::span_detail("feature_selection");
    let featsel_mem = cajade_obs::AllocScope::enter("feature_selection");
    let mut fs = run_featsel(
        apt,
        pt,
        params,
        index.as_ref(),
        sample.as_deref(),
        Some(question),
        &NoSharedStats,
    );
    if params.exclude_fd_attrs {
        let fd = crate::fd::group_determining_fields(apt, pt, question);
        fs.num_fields.retain(|f| !fd.contains(f));
        fs.cat_fields.retain(|f| !fd.contains(f));
    }
    timings.feature_selection = t0.elapsed();
    drop(featsel_span);
    drop(featsel_mem);

    // ---- Phase 2: LCA candidates over the λ_pat-samp sample. -----------
    let t0 = Instant::now();
    let lca_span = cajade_obs::span_detail("gen_pat_cand");
    let lca_mem = cajade_obs::AllocScope::enter("gen_pat_cand");
    let scope_rows = question_scope_rows(apt, pt, question);
    let lca_rows: Vec<u32> = sample_with_cap(
        scope_rows.len(),
        params.lambda_pat_samp,
        params.pat_samp_cap,
        params.seed.wrapping_add(1),
    )
    .into_iter()
    .map(|i| scope_rows[i])
    .collect();
    let mut cat_pats = lca_candidates(apt, &lca_rows, &fs.cat_fields);
    cat_pats.retain(|p| p.len() <= params.max_cat_attrs);
    timings.gen_pat_cand = t0.elapsed();
    drop(lca_span);
    drop(lca_mem);

    // ---- Fragment boundaries per selected numeric field (once). --------
    let frag_span = cajade_obs::span_detail("fragments");
    let frag_mem = cajade_obs::AllocScope::enter("fragments");
    let t0 = Instant::now();
    let frag: Vec<(usize, Vec<f64>)> = fs
        .num_fields
        .iter()
        .map(|&f| (f, fragment_boundaries(apt, f, None, params.num_frags)))
        .collect();
    timings.refine_patterns += t0.elapsed();

    // Predicate bitmaps for every (field, boundary, ≤/≥) refinement.
    let t0 = Instant::now();
    let bank = index.as_ref().map(|ix| PredBank::build(ix, &frag));
    timings.prepare += t0.elapsed();
    drop(frag_span);
    drop(frag_mem);

    let eval = match (&index, &bank) {
        (Some(ix), Some(bk)) => SampleEval::Vector {
            index: ix,
            bank: bk,
        },
        _ => SampleEval::Scalar(match sample {
            Some(rows) => Scorer::sampled(apt, pt, rows),
            None => Scorer::exact(apt, pt),
        }),
    };
    let candidates: Vec<(Pattern, Option<Mask>)> =
        cat_pats.into_iter().map(|p| (p, None)).collect();

    let (explanations, patterns_evaluated) = mine_core(
        apt,
        pt,
        question,
        params,
        candidates,
        &frag,
        &eval,
        &mut timings,
    );

    MiningOutcome {
        explanations,
        timings,
        feature_selection: fs,
        patterns_evaluated,
    }
}

/// The feature-selection dispatch shared by [`mine_apt`] (question-
/// specific, `question = Some`) and
/// [`prepare_apt`](crate::prepared::prepare_apt) (group-global,
/// `question = None`): maps [`MiningParams`] onto a [`FeatSelConfig`],
/// picks the trainer per [`MiningParams::featsel_engine`] — the
/// histogram trainer reuses the index's `(group, PT row)` scan order
/// when one exists and reconstructs the identical order otherwise — and
/// applies the `banned_attrs` filter. One copy, so cold asks and warm
/// `PreparedApt` asks can never diverge in how selection is wired up.
pub(crate) fn run_featsel(
    apt: &Apt,
    pt: &ProvenanceTable,
    params: &MiningParams,
    index: Option<&ScoreIndex>,
    sample: Option<&[u32]>,
    question: Option<&Question>,
    stats: &dyn ColumnStatsProvider,
) -> FeatureSelection {
    let featsel_cfg = FeatSelConfig {
        sel_attr: params.sel_attr,
        cluster_threshold: params.cluster_threshold,
        forest_trees: params.forest_trees,
        seed: params.seed,
        ..FeatSelConfig::default()
    };
    let mut fs = if !params.feature_selection {
        all_features(apt)
    } else {
        match (params.featsel_engine, question) {
            (FeatSelEngine::FloatMatrix, Some(q)) => select_features(apt, pt, q, &featsel_cfg),
            (FeatSelEngine::FloatMatrix, None) => select_features_global(apt, pt, &featsel_cfg),
            (FeatSelEngine::Histogram, q) => {
                // The histogram trainer consumes rows in the index's
                // (group, PT row) scan order over the same typed-array /
                // dictionary representation the index encodes.
                let order_owned;
                let order: &[u32] = match index {
                    Some(ix) => ix.order(),
                    None => {
                        order_owned = hist_scan_order(apt, pt, sample);
                        &order_owned
                    }
                };
                match q {
                    Some(q) => select_features_hist(apt, pt, order, q, &featsel_cfg, stats),
                    None => select_features_hist_global(apt, pt, order, &featsel_cfg, stats),
                }
            }
        }
    };
    if !params.banned_attrs.is_empty() {
        let banned = |f: &usize| {
            params
                .banned_attrs
                .iter()
                .any(|b| apt.fields[*f].name.contains(b.as_str()))
        };
        fs.num_fields.retain(|f| !banned(f));
        fs.cat_fields.retain(|f| !banned(f));
    }
    fs
}

/// The scoring backend of one mining run: the scalar row-at-a-time
/// [`Scorer`] or the columnar [`ScoreIndex`] + precomputed refinement
/// masks. Both yield bit-identical metrics.
pub(crate) enum SampleEval<'a> {
    /// Interpreted row-scan scoring.
    Scalar(Scorer<'a>),
    /// Bitmap kernel.
    Vector {
        /// Sample index (mask evaluation + segmented popcounts).
        index: &'a ScoreIndex,
        /// Precomputed `(field, boundary, op)` refinement masks, aligned
        /// with the `frag` list passed to [`mine_core`].
        bank: &'a PredBank,
    },
}

/// Candidate ranking + refinement BFS + diversity top-k + exact
/// re-scoring — the shared back half of Algorithm 1, used by both
/// [`mine_apt`] (per-question preparation) and
/// [`mine_prepared`](crate::prepared::mine_prepared) (cached
/// question-independent preparation).
///
/// `candidates` are the unranked categorical seeds; a `Some` mask is the
/// pattern's precomputed match bitmap (pooled candidates), `None` masks
/// are evaluated here (memoized per distinct equality predicate).
#[allow(clippy::too_many_arguments)]
pub(crate) fn mine_core(
    apt: &Apt,
    pt: &ProvenanceTable,
    question: &Question,
    params: &MiningParams,
    candidates: Vec<(Pattern, Option<Mask>)>,
    frag: &[(usize, Vec<f64>)],
    eval: &SampleEval<'_>,
    timings: &mut MiningTimings,
) -> (Vec<MinedExplanation>, usize) {
    cajade_obs::faults::failpoint_infallible("mine.refine");
    let directions = question.directions();
    let mut patterns_evaluated = 0usize;

    // ---- Rank categorical candidates by recall, keep top k_cat. --------
    let t0 = Instant::now();
    let rank_span = cajade_obs::span_detail("rank_candidates");
    let rank_mem = cajade_obs::AllocScope::enter("rank_candidates");
    let mut eq_memo: HashMap<(usize, Pred), Mask> = HashMap::new();
    let mut ranked: Vec<(Pattern, Option<Mask>, f64)> = candidates
        .into_iter()
        .map(|(p, mask)| {
            patterns_evaluated += 1;
            let (mask, best_recall) = match eval {
                SampleEval::Scalar(scorer) => {
                    let r = directions
                        .iter()
                        .map(|&(t, s)| scorer.score(&p, t, s).recall)
                        .fold(0.0, f64::max);
                    (None, r)
                }
                SampleEval::Vector { index, .. } => {
                    let mask = mask.unwrap_or_else(|| {
                        let mut m = index.full_mask();
                        for (field, pred) in p.preds() {
                            let pm = eq_memo
                                .entry((*field, *pred))
                                .or_insert_with(|| index.eval_pred(*field, pred));
                            m.and_assign(pm);
                        }
                        m
                    });
                    let r = directions
                        .iter()
                        .map(|&(t, s)| index.score_mask(&mask, t, s).recall)
                        .fold(0.0, f64::max);
                    (Some(mask), r)
                }
            };
            (p, mask, best_recall)
        })
        .collect();
    drop(eq_memo);
    // `total_cmp`: under a NaN recall (degenerate metrics) `partial_cmp`
    // fell back to Equal, which made the top-k_cat cut depend on the
    // incoming candidate order — a silent nondeterminism.
    ranked.sort_by(|a, b| b.2.total_cmp(&a.2));
    ranked.truncate(params.k_cat_patterns);
    timings.fscore_calc += t0.elapsed();
    drop(rank_span);
    drop(rank_mem);
    // Scoring and refinement interleave below, so the BFS gets one span;
    // the fscore_calc / refine_patterns split stays in `MiningTimings`.
    let bfs_span = cajade_obs::span_detail("refine_bfs");
    let bfs_mem = cajade_obs::AllocScope::enter("refine_bfs");

    // ---- Refinement BFS with recall pruning. ---------------------------
    let full_mask = match eval {
        SampleEval::Vector { index, .. } => Some(index.full_mask()),
        SampleEval::Scalar(_) => None,
    };

    // F-score upper-bound pruning state (vectorized engine only): the
    // per-direction TP count of every refinement predicate mask, computed
    // once from the PredBank. A child's TP is bounded by
    // `min(tp_parent, tp_pred)` (its mask is the AND of both), so many
    // children can be discarded without building or scoring their mask:
    // if the bound caps recall at ≤ λ_recall in every direction, the
    // child could neither enter the kept set nor — by Proposition 3.1 —
    // seed a refinement that does. With `top_k = 1` the bound also prunes
    // against the best kept F-score so far (`F ≤ 2·tp/(tp + a1)`, i.e.
    // perfect precision and all bounded TPs recalled); with diversity-
    // aware selection of k > 1 patterns a kept-but-low-F pattern can
    // still displace a near-duplicate (§3.5), so the floor only applies
    // when a single pattern is requested. Both rules leave `mine_apt`
    // output bit-identical (property-tested) unless `max_patterns` binds.
    //
    // `pred_tp[fi][bi][op slot][direction]` — aligned with `frag`.
    /// Per-direction `a1` denominators + per-predicate TP counts.
    type UbState = (Vec<usize>, Vec<Vec<[Vec<usize>; 2]>>);
    let ub_state: Option<UbState> = match (&eval, params) {
        (
            SampleEval::Vector { index, bank },
            MiningParams {
                refine_ub_prune: true,
                ..
            },
        ) => {
            let a1s: Vec<usize> = directions
                .iter()
                .map(|&(primary, _)| index.group_size(primary))
                .collect();
            let pred_tp: Vec<Vec<[Vec<usize>; 2]>> = frag
                .iter()
                .enumerate()
                .map(|(fi, (_, boundaries))| {
                    (0..boundaries.len())
                        .map(|bi| {
                            [PredOp::Le, PredOp::Ge].map(|op| {
                                let mask = bank.mask(fi, bi, op);
                                directions
                                    .iter()
                                    .map(|&(primary, _)| index.tp_of(mask, primary))
                                    .collect()
                            })
                        })
                        .collect()
                })
                .collect();
            Some((a1s, pred_tp))
        }
        _ => None,
    };
    // The `top_k = 1` F-score floor: highest kept (sampled) F so far.
    let mut kept_f_floor = f64::NEG_INFINITY;
    // The lattice is enumerated **canonically**: a child only refines
    // fragment fields strictly after its parent's last refined one, so
    // every pattern (seed × subset of fragment fields, one threshold
    // each) is generated exactly once and no deduplication set is needed.
    // This is output-equivalent to generate-and-dedup: a pattern whose
    // canonical parent was recall-pruned has, by the same anti-
    // monotonicity that makes λ_recall pruning sound (Proposition 3.1),
    // recall no higher than that pruned parent in *every* direction — it
    // could never be kept nor seed a keepable refinement. (The argument
    // assumes the `max_patterns` safety cap does not bind: a binding cap
    // truncates the enumeration at a — deterministic — prefix that
    // differs from the dedup-based order.)
    struct TodoItem {
        pat: Pattern,
        mask: Option<Mask>,
        /// First fragment-field index this pattern may refine.
        next_fi: usize,
        /// Numeric predicates already on the pattern (λ_attrNum budget).
        numeric_preds: usize,
    }
    let mut todo: VecDeque<TodoItem> = VecDeque::with_capacity(256);
    // The empty pattern seeds numeric-only refinements (pure-context
    // explanations like `salary < 15330435`, Table 4).
    todo.push_back(TodoItem {
        pat: Pattern::empty(),
        mask: full_mask,
        next_fi: 0,
        numeric_preds: 0,
    });
    for (p, mask, _) in ranked {
        let numeric_preds = p.num_numeric_preds(apt);
        todo.push_back(TodoItem {
            pat: p,
            mask,
            next_fi: 0,
            numeric_preds,
        });
    }

    // Candidates: (pattern, primary, secondary, sampled metrics).
    let mut kept: Vec<(Pattern, usize, Option<usize>, PatternMetrics)> = Vec::new();

    while let Some(item) = todo.pop_front() {
        if patterns_evaluated >= params.max_patterns {
            break;
        }
        // Cooperative deadline check, rate-limited to amortize the clock
        // read; a break here leaves `kept` as-is, and the diversity
        // selection + exact re-score below still run, so a budgeted ask
        // returns a valid (merely less-refined) diverse top-k.
        if patterns_evaluated.is_multiple_of(64) && cajade_obs::budget::stop("mine.refine") {
            timings.budget_stopped += 1;
            break;
        }
        patterns_evaluated += 1;
        let TodoItem {
            pat,
            mask,
            next_fi,
            numeric_preds,
        } = item;

        // Score in both directions (Algorithm 1 line 11).
        let t_score = Instant::now();
        let mut best_recall = 0.0f64;
        let mut item_tps = [0usize; 2];
        for (d, &(primary, secondary)) in directions.iter().enumerate() {
            let m = match (eval, &mask) {
                (SampleEval::Vector { index, .. }, Some(mask)) => {
                    index.score_mask(mask, primary, secondary)
                }
                (SampleEval::Scalar(scorer), _) => scorer.score(&pat, primary, secondary),
                _ => unreachable!("vector queue entries always carry a mask"),
            };
            best_recall = best_recall.max(m.recall);
            item_tps[d] = m.tp;
            if !pat.is_empty() && m.recall > params.lambda_recall {
                kept_f_floor = kept_f_floor.max(m.f_score);
                kept.push((pat.clone(), primary, secondary, m));
            }
        }
        let t_mid = Instant::now();
        timings.fscore_calc += t_mid - t_score;

        // Prune refinements when recall already fell below λ_recall
        // (Proposition 3.1: refinement can only lower recall). The empty
        // pattern always has recall 1 and is always refined.
        if best_recall <= params.lambda_recall && !pat.is_empty() {
            timings.recall_pruned_subtrees += 1;
            continue;
        }
        if numeric_preds >= params.lambda_attr_num {
            continue;
        }

        for (fi, (field, boundaries)) in frag.iter().enumerate().skip(next_fi) {
            if !pat.is_free(*field) {
                continue;
            }
            for (bi, &c) in boundaries.iter().enumerate() {
                for op in [PredOp::Le, PredOp::Ge] {
                    // F-score upper bound: discard the child subtree when
                    // `min(tp_parent, tp_pred)` proves it can never be
                    // kept (nor, for top_k = 1, beat the kept-F floor).
                    if let Some((a1s, pred_tp)) = &ub_state {
                        let slot = match op {
                            PredOp::Le => 0,
                            _ => 1,
                        };
                        let tps = &pred_tp[fi][bi][slot];
                        let viable = a1s.iter().enumerate().any(|(d, &a1)| {
                            let tp_ub = item_tps[d].min(tps[d]);
                            let recall_ub = if a1 == 0 {
                                0.0
                            } else {
                                tp_ub as f64 / a1 as f64
                            };
                            if recall_ub <= params.lambda_recall {
                                return false;
                            }
                            if params.top_k == 1 {
                                let f_ub = 2.0 * tp_ub as f64 / (tp_ub + a1) as f64;
                                return f_ub > kept_f_floor;
                            }
                            true
                        });
                        if !viable {
                            timings.ub_pruned_children += 1;
                            continue;
                        }
                    }
                    let refined = pat.refine(
                        *field,
                        Pred {
                            op,
                            value: float_const(c),
                        },
                    );
                    // Incremental refinement: the child's matches are the
                    // parent's AND the threshold's bitmap.
                    let child_mask = match (eval, &mask) {
                        (SampleEval::Vector { bank, .. }, Some(m)) => {
                            Some(m.and(bank.mask(fi, bi, op)))
                        }
                        _ => None,
                    };
                    todo.push_back(TodoItem {
                        pat: refined,
                        mask: child_mask,
                        next_fi: fi + 1,
                        numeric_preds: numeric_preds + 1,
                    });
                }
            }
        }
        timings.refine_patterns += t_mid.elapsed();
    }
    drop(bfs_span);
    drop(bfs_mem);

    // ---- Top-k with diversity, then exact re-scoring. -------------------
    let _select_span = cajade_obs::span_detail("select_top_k");
    let _select_mem = cajade_obs::AllocScope::enter("select_top_k");
    let items: Vec<(Pattern, f64)> = kept
        .iter()
        .map(|(p, _, _, m)| (p.clone(), m.f_score))
        .collect();
    let selected = select_top_k_diverse(&items, params.top_k);

    // When the scan already covered every APT row (λ_F1 ≥ 1.0), the
    // "sampled" metrics *are* the exact metrics — re-scoring would
    // recompute bit-identical numbers row by row.
    let scan_was_exact = match eval {
        SampleEval::Scalar(scorer) => scorer.scan_size() == apt.num_rows,
        SampleEval::Vector { index, .. } => index.scan_size() == apt.num_rows,
    };
    let exact = (!scan_was_exact).then(|| Scorer::exact(apt, pt));
    let explanations: Vec<MinedExplanation> = selected
        .into_iter()
        .map(|i| {
            let (pat, primary, secondary, sampled) = &kept[i];
            let metrics = match &exact {
                Some(exact) => exact.score(pat, *primary, *secondary),
                None => *sampled,
            };
            MinedExplanation {
                pattern: pat.clone(),
                primary_group: *primary,
                secondary_group: *secondary,
                metrics,
                sampled_f_score: sampled.f_score,
            }
        })
        .collect();

    (explanations, patterns_evaluated)
}

/// APT rows relevant to the question (both groups for two-point; all rows
/// for single-point).
///
/// The two-point scope is built from `pt.rows_of_group` — the two groups'
/// PT rows become a per-PT-row membership bitmap, and the APT scan is one
/// bit test per row instead of a `group_of` gather + two group compares.
pub(crate) fn question_scope_rows(
    apt: &Apt,
    pt: &ProvenanceTable,
    question: &Question,
) -> Vec<u32> {
    match question {
        Question::TwoPoint { t1, t2 } => {
            let mut member = vec![0u64; pt.num_rows.div_ceil(64)];
            for t in [*t1, *t2] {
                if let Some(rows) = pt.rows_of_group.get(t) {
                    for &r in rows {
                        member[r as usize / 64] |= 1 << (r % 64);
                    }
                }
            }
            let in_scope: usize = member.iter().map(|w| w.count_ones() as usize).sum();
            if in_scope == pt.num_rows {
                // Both groups cover the whole PT — every APT row is in scope.
                return (0..apt.num_rows as u32).collect();
            }
            let mut out = Vec::new();
            for (r, &p) in apt.pt_row.iter().enumerate() {
                if member[p as usize / 64] & (1 << (p % 64)) != 0 {
                    out.push(r as u32);
                }
            }
            out
        }
        Question::SinglePoint { .. } => (0..apt.num_rows as u32).collect(),
    }
}

/// Thresholds are stored as floats; whole values print as integers.
fn float_const(c: f64) -> PatValue {
    PatValue::Float(c.to_bits())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cajade_graph::{Apt, JoinGraph};
    use cajade_query::{parse_sql, ProvenanceTable};
    use cajade_storage::{AttrKind, DataType, Database, SchemaBuilder, Value};

    /// Two seasons of games; in s2 the star player scores high. The miner
    /// should find `player=star ∧ pts ≥ θ`-style patterns (the Example-5
    /// shape) from the PT-only APT already containing player columns.
    fn fixture() -> (Database, cajade_query::Query) {
        let mut db = Database::new("m");
        db.create_table(
            SchemaBuilder::new("t")
                .column_pk("id", DataType::Int, AttrKind::Categorical)
                .column("season", DataType::Str, AttrKind::Categorical)
                .column("player", DataType::Str, AttrKind::Categorical)
                .column("pts", DataType::Int, AttrKind::Numeric)
                .column("noise", DataType::Int, AttrKind::Numeric)
                .build(),
        )
        .unwrap();
        let s1 = db.intern("s1");
        let s2 = db.intern("s2");
        let star = db.intern("star");
        let other = db.intern("other");
        let mut id = 0i64;
        // Season 1: star scores low (10-14), other scores ~20.
        for i in 0..30i64 {
            id += 1;
            db.table_mut("t")
                .unwrap()
                .push_row(vec![
                    Value::Int(id),
                    Value::Str(s1),
                    Value::Str(if i % 2 == 0 { star } else { other }),
                    Value::Int(if i % 2 == 0 { 10 + i % 5 } else { 20 }),
                    Value::Int((i * 13) % 7),
                ])
                .unwrap();
        }
        // Season 2: star scores high (30-34), other still ~20.
        for i in 0..30i64 {
            id += 1;
            db.table_mut("t")
                .unwrap()
                .push_row(vec![
                    Value::Int(id),
                    Value::Str(s2),
                    Value::Str(if i % 2 == 0 { star } else { other }),
                    Value::Int(if i % 2 == 0 { 30 + i % 5 } else { 20 }),
                    Value::Int((i * 13) % 7),
                ])
                .unwrap();
        }
        let q = parse_sql("SELECT count(*) AS c, season FROM t GROUP BY season").unwrap();
        (db, q)
    }

    fn mine(params: &MiningParams) -> (MiningOutcome, Apt, Database, usize, usize) {
        let (db, q) = fixture();
        let pt = ProvenanceTable::compute(&db, &q).unwrap();
        let apt = Apt::materialize(&db, &pt, &JoinGraph::pt_only()).unwrap();
        let t1 = pt.find_group(&db, &q, &[("season", "s2")]).unwrap();
        let t2 = pt.find_group(&db, &q, &[("season", "s1")]).unwrap();
        let out = mine_apt(&apt, &pt, &Question::TwoPoint { t1, t2 }, params);
        (out, apt, db, t1, t2)
    }

    fn default_test_params() -> MiningParams {
        MiningParams {
            lambda_pat_samp: 1.0, // tiny fixture: no sampling noise
            lambda_f1_samp: 1.0,
            sel_attr: SelAttr::Count(3),
            ..Default::default()
        }
    }

    #[test]
    fn finds_star_player_pattern() {
        let (out, apt, db, t1, _t2) = mine(&default_test_params());
        assert!(!out.explanations.is_empty());
        // Among the top explanations there must be one with high F-score
        // for t1 constraining pts from below (the star's jump).
        let good = out.explanations.iter().any(|e| {
            e.primary_group == t1
                && e.metrics.f_score > 0.6
                && e.pattern
                    .preds()
                    .iter()
                    .any(|(f, p)| apt.fields[*f].name == "prov_t_pts" && p.op == PredOp::Ge)
        });
        assert!(
            good,
            "explanations: {:?}",
            out.explanations
                .iter()
                .map(|e| (e.pattern.render(&apt, db.pool()), e.metrics.f_score))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn group_by_attribute_never_appears() {
        let (out, apt, _db, _, _) = mine(&default_test_params());
        let season = apt.field_index("prov_t_season").unwrap();
        assert!(out.explanations.iter().all(|e| e.pattern.is_free(season)));
    }

    #[test]
    fn numeric_budget_respected() {
        let mut p = default_test_params();
        p.lambda_attr_num = 1;
        let (out, apt, _db, _, _) = mine(&p);
        assert!(out
            .explanations
            .iter()
            .all(|e| e.pattern.num_numeric_preds(&apt) <= 1));
    }

    #[test]
    fn recall_threshold_filters_candidates() {
        let mut p = default_test_params();
        p.lambda_recall = 0.9; // only very high recall patterns survive
        let (out, _apt, _db, _, _) = mine(&p);
        assert!(out
            .explanations
            .iter()
            .all(|e| e.metrics.recall > 0.9 || e.sampled_f_score == 0.0));
    }

    #[test]
    fn timings_are_populated() {
        let (out, _apt, _db, _, _) = mine(&default_test_params());
        let t = out.timings;
        assert!(t.total() > Duration::ZERO);
        assert!(t.fscore_calc > Duration::ZERO);
    }

    #[test]
    fn deterministic_given_seed() {
        let p = default_test_params();
        let (a, apt, db, _, _) = mine(&p);
        let (b, _, _, _, _) = mine(&p);
        let ra: Vec<String> = a
            .explanations
            .iter()
            .map(|e| e.pattern.render(&apt, db.pool()))
            .collect();
        let rb: Vec<String> = b
            .explanations
            .iter()
            .map(|e| e.pattern.render(&apt, db.pool()))
            .collect();
        assert_eq!(ra, rb);
    }

    #[test]
    fn max_patterns_cap_halts_search() {
        let mut p = default_test_params();
        p.max_patterns = 5;
        let (out, _apt, _db, _, _) = mine(&p);
        assert!(out.patterns_evaluated <= 6);
    }

    #[test]
    fn feature_selection_off_keeps_all_attrs() {
        let mut p = default_test_params();
        p.feature_selection = false;
        let (out, apt, _db, _, _) = mine(&p);
        let n = out.feature_selection.num_fields.len() + out.feature_selection.cat_fields.len();
        assert_eq!(n, apt.pattern_fields().len());
    }

    /// Proposition 3.1 as a property: refinement never increases recall.
    #[test]
    fn prop_recall_antimonotone_under_refinement() {
        use proptest::prelude::*;
        let (db, q) = fixture();
        let pt = ProvenanceTable::compute(&db, &q).unwrap();
        let apt = Apt::materialize(&db, &pt, &JoinGraph::pt_only()).unwrap();
        let scorer = Scorer::exact(&apt, &pt);
        let pts = apt.field_index("prov_t_pts").unwrap();
        let noise = apt.field_index("prov_t_noise").unwrap();
        let player = apt.field_index("prov_t_player").unwrap();
        let star = db.lookup_str("star").unwrap();

        let mut runner = proptest::test_runner::TestRunner::deterministic();
        runner
            .run(
                &(0i64..40, 0i64..10, proptest::bool::ANY, proptest::bool::ANY),
                |(thr1, thr2, op1, op2)| {
                    let base = Pattern::from_preds(vec![(
                        player,
                        Pred {
                            op: PredOp::Eq,
                            value: PatValue::Str(star.0),
                        },
                    )]);
                    let r1 = base.refine(
                        pts,
                        Pred {
                            op: if op1 { PredOp::Le } else { PredOp::Ge },
                            value: PatValue::Int(thr1),
                        },
                    );
                    let r2 = r1.refine(
                        noise,
                        Pred {
                            op: if op2 { PredOp::Le } else { PredOp::Ge },
                            value: PatValue::Int(thr2),
                        },
                    );
                    for t in [0usize, 1] {
                        let rec0 = scorer.score(&base, t, Some(1 - t)).recall;
                        let rec1 = scorer.score(&r1, t, Some(1 - t)).recall;
                        let rec2 = scorer.score(&r2, t, Some(1 - t)).recall;
                        prop_assert!(rec1 <= rec0 + 1e-12);
                        prop_assert!(rec2 <= rec1 + 1e-12);
                    }
                    Ok(())
                },
            )
            .unwrap();
    }
}
