//! Functional-dependency-aware attribute exclusion — the extension the
//! paper names as future work (§6.2: explanations that merely restate the
//! grouped value through a functional dependency "cannot be avoided"
//! without FD reasoning; §8 lists integrating FDs as an open direction).
//!
//! We detect, on the materialized APT, attributes `A` such that `A →
//! group` holds *exactly* (every non-null value of `A` maps to a single
//! output tuple) and the dependency is *informative-free*: knowing `A`
//! pins down the group, so any pattern `A = c` is a tautological
//! restatement of the user question. Such attributes (e.g. `season_id`
//! when grouping by `season_name`, or a date column unique per season)
//! can be excluded from mining automatically instead of via a manual ban
//! list.
//!
//! The check is sound for the question at hand (it uses the actual APT
//! instance, the only scope where patterns are evaluated) and runs in one
//! scan per attribute.

use std::collections::HashMap;

use cajade_graph::Apt;
use cajade_query::ProvenanceTable;

use crate::pattern::PatValue;
use crate::score::Question;

/// Returns the APT field indices whose values functionally determine the
/// question's group within the question scope (both groups for two-point
/// questions). Constant attributes are *not* reported (they determine
/// nothing; feature selection already down-ranks them).
///
/// `min_distinct` guards against trivially-keyed columns being kept: an
/// attribute must have at least 2 distinct values to be a meaningful FD
/// source (a constant column vacuously "determines" the group).
pub fn group_determining_fields(
    apt: &Apt,
    pt: &ProvenanceTable,
    question: &Question,
) -> Vec<usize> {
    let in_scope = |g: u32| -> bool {
        match question {
            Question::TwoPoint { t1, t2 } => g as usize == *t1 || g as usize == *t2,
            Question::SinglePoint { .. } => true,
        }
    };

    let mut out = Vec::new();
    for field in apt.pattern_fields() {
        let mut value_group: HashMap<PatValue, u32> = HashMap::new();
        let mut determines = true;
        let mut groups_seen: Vec<u32> = Vec::new();
        for row in 0..apt.num_rows {
            let g = pt.group_of[apt.pt_row[row] as usize];
            if !in_scope(g) {
                continue;
            }
            let v = apt.value(row, field);
            let Some(pv) = PatValue::from_value(&v) else {
                continue; // NULLs do not participate in the FD
            };
            match value_group.get(&pv) {
                Some(&prev) if prev != g => {
                    determines = false;
                    break;
                }
                Some(_) => {}
                None => {
                    value_group.insert(pv, g);
                    if !groups_seen.contains(&g) {
                        groups_seen.push(g);
                    }
                }
            }
        }
        // Determining + non-constant + actually distinguishing the groups.
        if determines && value_group.len() >= 2 && groups_seen.len() >= 2 {
            out.push(field);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cajade_graph::JoinGraph;
    use cajade_query::{parse_sql, ProvenanceTable};
    use cajade_storage::{AttrKind, DataType, Database, SchemaBuilder, Value};

    /// Fixture: `season_id` determines `season_name` (the FD), `pts`
    /// varies freely, `constant` never changes.
    fn fixture() -> (Database, cajade_query::Query) {
        let mut db = Database::new("fd");
        db.create_table(
            SchemaBuilder::new("t")
                .column_pk("id", DataType::Int, AttrKind::Categorical)
                .column("season_name", DataType::Str, AttrKind::Categorical)
                .column("season_id", DataType::Int, AttrKind::Categorical)
                .column("pts", DataType::Int, AttrKind::Numeric)
                .column("constant", DataType::Int, AttrKind::Categorical)
                .build(),
        )
        .unwrap();
        let s1 = db.intern("2012-13");
        let s2 = db.intern("2015-16");
        for i in 0..20i64 {
            let (name, sid) = if i % 2 == 0 { (s1, 4) } else { (s2, 7) };
            db.table_mut("t")
                .unwrap()
                .push_row(vec![
                    Value::Int(i),
                    Value::Str(name),
                    Value::Int(sid),
                    Value::Int(i % 7),
                    Value::Int(1),
                ])
                .unwrap();
        }
        let q = parse_sql("SELECT count(*) AS c, season_name FROM t GROUP BY season_name").unwrap();
        (db, q)
    }

    #[test]
    fn detects_fd_restating_attribute() {
        let (db, q) = fixture();
        let pt = ProvenanceTable::compute(&db, &q).unwrap();
        let apt = Apt::materialize(&db, &pt, &JoinGraph::pt_only()).unwrap();
        let question = Question::TwoPoint { t1: 0, t2: 1 };
        let fd = group_determining_fields(&apt, &pt, &question);
        let season_id = apt.field_index("prov_t_season__id").unwrap();
        assert!(fd.contains(&season_id), "season_id → group detected");
    }

    #[test]
    fn free_and_constant_attributes_not_flagged() {
        let (db, q) = fixture();
        let pt = ProvenanceTable::compute(&db, &q).unwrap();
        let apt = Apt::materialize(&db, &pt, &JoinGraph::pt_only()).unwrap();
        let question = Question::TwoPoint { t1: 0, t2: 1 };
        let fd = group_determining_fields(&apt, &pt, &question);
        let pts = apt.field_index("prov_t_pts").unwrap();
        let constant = apt.field_index("prov_t_constant").unwrap();
        assert!(!fd.contains(&pts), "pts has mixed groups per value");
        assert!(!fd.contains(&constant), "constants are not FD sources");
    }

    #[test]
    fn unique_key_is_flagged() {
        // The `id` column is unique per row → trivially determines the
        // group; it must be flagged (patterns on row ids are tautologies).
        let (db, q) = fixture();
        let pt = ProvenanceTable::compute(&db, &q).unwrap();
        let apt = Apt::materialize(&db, &pt, &JoinGraph::pt_only()).unwrap();
        let question = Question::TwoPoint { t1: 0, t2: 1 };
        let fd = group_determining_fields(&apt, &pt, &question);
        let id = apt.field_index("prov_t_id").unwrap();
        assert!(fd.contains(&id));
    }

    #[test]
    fn scope_restricted_to_question_groups() {
        // An attribute that determines the group only within {t1, t2} but
        // not globally must still be flagged for a two-point question.
        let mut db = Database::new("fd2");
        db.create_table(
            SchemaBuilder::new("t")
                .column_pk("id", DataType::Int, AttrKind::Categorical)
                .column("grp", DataType::Str, AttrKind::Categorical)
                .column("x", DataType::Int, AttrKind::Categorical)
                .build(),
        )
        .unwrap();
        let a = db.intern("a");
        let b = db.intern("b");
        let c = db.intern("c");
        // x=1 ↔ grp a; x=2 ↔ grp b; but grp c reuses x=1 and x=2.
        let rows = [
            (1, a, 1),
            (2, a, 1),
            (3, b, 2),
            (4, b, 2),
            (5, c, 1),
            (6, c, 2),
        ];
        for (id, g, x) in rows {
            db.table_mut("t")
                .unwrap()
                .push_row(vec![Value::Int(id), Value::Str(g), Value::Int(x)])
                .unwrap();
        }
        let q = parse_sql("SELECT count(*) AS c, grp FROM t GROUP BY grp").unwrap();
        let pt = ProvenanceTable::compute(&db, &q).unwrap();
        let apt = Apt::materialize(&db, &pt, &JoinGraph::pt_only()).unwrap();
        let ta = pt.find_group(&db, &q, &[("grp", "a")]).unwrap();
        let tb = pt.find_group(&db, &q, &[("grp", "b")]).unwrap();
        let x = apt.field_index("prov_t_x").unwrap();

        let two_point = group_determining_fields(&apt, &pt, &Question::TwoPoint { t1: ta, t2: tb });
        assert!(two_point.contains(&x), "within {{a,b}} x determines grp");

        let single = group_determining_fields(&apt, &pt, &Question::SinglePoint { t: ta });
        assert!(!single.contains(&x), "globally x does not determine grp");
    }
}
