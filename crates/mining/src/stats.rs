//! Cross-graph shared column statistics.
//!
//! `prepare_apt` used to re-derive two kinds of per-column statistics for
//! **every** join graph's APT, even though the same context-table column
//! appears in many of them (a question over `k` graphs re-binned
//! `scoring.pts` up to `k` times):
//!
//! * the [`BinSpec`] quantile thresholds / category dictionary the
//!   histogram feature-selection trainer bins with, and
//! * the λ#frag fragment boundaries the refinement BFS draws threshold
//!   predicates from.
//!
//! Both depend only on the **base table column** and a couple of
//! [`MiningParams`] knobs — not on the join graph, the question, or the
//! APT's row multiset. This module defines the seam that lets a caller
//! share them: [`ColumnStatsProvider`] is injected into
//! [`prepare_apt_with`](crate::prepared::prepare_apt_with), the service
//! backs it with a database-scoped, epoch-invalidated LRU cache, and the
//! one-shot pipeline wires the [`NoSharedStats`] pass-through (per-APT
//! computation, bit-identical to the historical behaviour).
//!
//! **Deliberate deviation** (documented like the others in
//! [`crate::prepared`]): shared statistics are computed over the base
//! table's rows — one value per tuple — while the per-APT fallback sees
//! the APT's join-fan-out-weighted multiset restricted to provenance.
//! Quantile boundaries and frequency caps can therefore differ between
//! the shared and pass-through paths. Both are faithful readings of the
//! paper's "split the domain of each numerical attribute into λ#frag
//! fragments" (§3.4); the shared reading is what makes multi-graph
//! questions scale sub-linearly in graph count, and it has the side
//! benefit that the same column refines with the same thresholds in every
//! graph.

use std::sync::Arc;

use cajade_graph::Apt;
use cajade_ml::BinSpec;
use cajade_storage::{AttrKind, Column};

use crate::featsel::FeatSelConfig;
use crate::fragments::quantile_boundaries;
use crate::miner::MiningParams;

/// Graph- and question-independent statistics of one base-table column.
#[derive(Debug, Clone)]
pub struct ColumnStats {
    /// Bin spec for the histogram feature-selection trainer (quantile
    /// thresholds for numeric columns, category dictionary for
    /// categorical ones).
    pub bins: BinSpec,
    /// λ#frag fragment boundaries (empty for categorical columns and for
    /// numeric columns with no finite values).
    pub fragments: Vec<f64>,
}

impl ColumnStats {
    /// Approximate heap footprint for cache byte budgeting.
    pub fn approx_bytes(&self) -> usize {
        self.bins.approx_bytes() + self.fragments.len() * 8 + 32
    }
}

/// The [`MiningParams`] knobs column statistics depend on. Callers that
/// cache [`ColumnStats`] must key entries by (a fingerprint of) this
/// config — two sessions with different λ#frag must not share boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColumnStatsConfig {
    /// Bin budget of the histogram trainer
    /// ([`FeatSelConfig::hist_bins`]).
    pub hist_bins: usize,
    /// λ#frag ([`MiningParams::num_frags`]).
    pub num_frags: usize,
}

impl ColumnStatsConfig {
    /// Extracts the stats-relevant knobs from a parameter set, mirroring
    /// exactly how [`run_featsel`](crate::miner) maps [`MiningParams`]
    /// onto a [`FeatSelConfig`] (the bin budget is not a mining λ, so it
    /// always takes the featsel default).
    pub fn from_params(params: &MiningParams) -> ColumnStatsConfig {
        ColumnStatsConfig {
            hist_bins: FeatSelConfig::default().hist_bins,
            num_frags: params.num_frags,
        }
    }

    /// Stable cache-key fingerprint of this config.
    pub fn fingerprint(&self) -> u64 {
        // FNV-1a over the two knobs; enough to separate cache keys.
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for v in [self.hist_bins as u64, self.num_frags as u64] {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1_0000_0000_01B3);
            }
        }
        h
    }
}

/// Source of shared per-column statistics, injected into
/// [`prepare_apt_with`](crate::prepared::prepare_apt_with).
///
/// `column_stats` is consulted once per `(table, column)` a preparation
/// touches; returning `None` makes that column fall back to per-APT
/// computation. Implementations are expected to be cheap on the hit path
/// (the service backs this with an LRU cache) and must be consistent for
/// the lifetime of one preparation — the same key must not answer with
/// different statistics mid-run.
pub trait ColumnStatsProvider: Sync {
    /// Shared statistics of base column `table.column`, or `None` to
    /// compute per-APT.
    fn column_stats(&self, table: &str, column: &str) -> Option<Arc<ColumnStats>>;
}

/// The pass-through provider: never shares, so every preparation computes
/// its statistics from the APT at hand — the historical (and one-shot
/// pipeline) behaviour.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoSharedStats;

impl ColumnStatsProvider for NoSharedStats {
    fn column_stats(&self, _table: &str, _column: &str) -> Option<Arc<ColumnStats>> {
        None
    }
}

/// Resolves an APT field to the base `(table, column)` it gathers, when
/// that column is shareable. PT fields are not: the provenance table is a
/// σ-filtered projection of the query's FROM tables, so statistics over
/// the full base column would describe rows the PT excludes.
pub fn source_column(apt: &Apt, field: usize) -> Option<(&str, &str)> {
    let f = &apt.fields[field];
    if f.from_pt {
        return None;
    }
    let rel = apt.graph.rel_of(f.node)?;
    Some((rel, f.base_column.as_str()))
}

/// Row cap for computing one column's shared statistics: columns longer
/// than this are read through a fixed stride. Quantile thresholds,
/// fragment boundaries, and category frequency caps are all estimates
/// feeding thresholded decisions, so ~512 evenly spaced rows (16 values
/// per bin at the default 32-bin budget, matching
/// [`cajade_ml::BinSpec::fit_f64`]'s own sampling rule) estimate them as
/// well as millions — and a cache **miss** stays O(cap) instead of
/// O(table), which is what keeps the first graph of a cold ask from
/// paying more than the per-APT computation it replaces.
pub const STATS_SAMPLE_CAP: usize = 512;

/// Computes the shared statistics of one base-table column (the cache
/// miss path of a caching [`ColumnStatsProvider`]).
///
/// Numeric-kind columns get quantile bin thresholds and fragment
/// boundaries over their non-null finite values; categorical-kind columns
/// get a frequency-capped category dictionary and no fragments. NULLs and
/// non-finite floats contribute to neither (they encode to the missing
/// bin downstream). Long columns are read through a stride
/// ([`STATS_SAMPLE_CAP`]), deterministically.
pub fn compute_column_stats(col: &Column, kind: AttrKind, cfg: &ColumnStatsConfig) -> ColumnStats {
    let step = if col.len() > STATS_SAMPLE_CAP {
        col.len().div_ceil(STATS_SAMPLE_CAP)
    } else {
        1
    };
    match kind {
        AttrKind::Numeric => {
            // Non-finite values are routed out by both consumers
            // (`fit_f64` and `quantile_boundaries`); no pre-filter here.
            let vals: Vec<f64> = (0..col.len())
                .step_by(step)
                .filter_map(|r| col.f64_at(r))
                .collect();
            ColumnStats {
                bins: BinSpec::fit_f64(&vals, cfg.hist_bins),
                fragments: quantile_boundaries(vals, cfg.num_frags),
            }
        }
        AttrKind::Categorical => {
            let mut bins = BinSpec::fit_keys(
                (0..col.len()).step_by(step).map(|r| column_cat_key(col, r)),
                cfg.hist_bins,
            );
            if step > 1 {
                // A strided fit can miss real categories; give them a
                // dedicated unknown bin instead of conflating them with
                // missing values at encode time.
                bins.reserve_unknown_bin();
            }
            ColumnStats {
                bins,
                fragments: Vec::new(),
            }
        }
    }
}

/// The dictionary key of one categorical cell, matching the encoding the
/// featsel gathers use: interned string id, raw integer, or float bits.
pub(crate) fn column_cat_key(col: &Column, r: usize) -> Option<u64> {
    match col {
        Column::Int { data, nulls } => (!nulls.is_null(r)).then(|| data[r] as u64),
        Column::Float { data, nulls } => (!nulls.is_null(r)).then(|| data[r].to_bits()),
        Column::Str { data, nulls } => (!nulls.is_null(r)).then(|| data[r].0 as u64),
    }
}

/// Resolves `table.column` in `db` and computes its shared statistics;
/// `None` when the table or column does not exist. The one resolution +
/// computation path shared by every provider over a base
/// [`Database`](cajade_storage::Database) (the service's caching
/// provider, [`BaseTableStats`], benches, tests) — so they can never
/// drift apart in how a column maps to stats.
pub fn base_column_stats(
    db: &cajade_storage::Database,
    table: &str,
    column: &str,
    cfg: &ColumnStatsConfig,
) -> Option<ColumnStats> {
    let t = db.table(table).ok()?;
    let ci = t.schema().field_index(column)?;
    Some(compute_column_stats(
        t.column(ci),
        t.schema().fields[ci].kind,
        cfg,
    ))
}

/// Memo of already-analyzed columns: `(table, column)` → stats (`None`
/// memoizes unresolvable columns too).
type StatsMemo = std::collections::HashMap<(String, String), Option<Arc<ColumnStats>>>;

/// A memoizing [`ColumnStatsProvider`] over one base [`Database`]: each
/// requested column is analyzed once ([`base_column_stats`]) and served
/// from an internal map afterwards. This is the provider for direct API
/// users, benches, and tests; the service wires its own epoch-keyed,
/// byte-budgeted variant instead.
///
/// [`Database`]: cajade_storage::Database
pub struct BaseTableStats<'a> {
    db: &'a cajade_storage::Database,
    cfg: ColumnStatsConfig,
    memo: std::sync::Mutex<StatsMemo>,
}

impl<'a> BaseTableStats<'a> {
    /// Provider over `db` with the given stats config.
    pub fn new(db: &'a cajade_storage::Database, cfg: ColumnStatsConfig) -> Self {
        BaseTableStats {
            db,
            cfg,
            memo: std::sync::Mutex::new(std::collections::HashMap::new()),
        }
    }
}

impl ColumnStatsProvider for BaseTableStats<'_> {
    fn column_stats(&self, table: &str, column: &str) -> Option<Arc<ColumnStats>> {
        let key = (table.to_string(), column.to_string());
        if let Some(memoized) = self.memo.lock().unwrap().get(&key) {
            return memoized.clone();
        }
        let stats = base_column_stats(self.db, table, column, &self.cfg).map(Arc::new);
        self.memo.lock().unwrap().insert(key, stats.clone());
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cajade_storage::{DataType, Value};

    fn float_col(vals: &[Option<f64>]) -> Column {
        let mut c = Column::new(DataType::Float);
        for v in vals {
            c.push(v.map(Value::Float).unwrap_or(Value::Null), "x")
                .unwrap();
        }
        c
    }

    #[test]
    fn numeric_stats_skip_nulls_and_non_finite() {
        let col = float_col(&[
            Some(1.0),
            None,
            Some(f64::NAN),
            Some(f64::INFINITY),
            Some(f64::NEG_INFINITY),
            Some(3.0),
            Some(2.0),
        ]);
        let cfg = ColumnStatsConfig {
            hist_bins: 8,
            num_frags: 3,
        };
        let stats = compute_column_stats(&col, AttrKind::Numeric, &cfg);
        assert_eq!(stats.fragments, vec![1.0, 2.0, 3.0]);
        match &stats.bins {
            BinSpec::Numeric { thresholds } => assert_eq!(thresholds, &[1.0, 2.0, 3.0]),
            _ => panic!("numeric spec"),
        }
    }

    #[test]
    fn categorical_stats_have_no_fragments() {
        let mut col = Column::new(DataType::Int);
        for v in [1i64, 2, 2, 3] {
            col.push(Value::Int(v), "x").unwrap();
        }
        let cfg = ColumnStatsConfig {
            hist_bins: 8,
            num_frags: 3,
        };
        let stats = compute_column_stats(&col, AttrKind::Categorical, &cfg);
        assert!(stats.fragments.is_empty());
        assert_eq!(stats.bins.num_bins(), 3);
    }

    /// A strided categorical fit can miss real categories; they must
    /// encode to a dedicated unknown bin, not the missing bin.
    #[test]
    fn sampled_categorical_fit_reserves_unknown_bin() {
        use cajade_ml::BinSpec;
        let mut col = Column::new(DataType::Int);
        // Long column whose rare category (value 7, one row) is certain
        // to be skipped by the stride; the bin budget is NOT exceeded,
        // so without the reservation there would be no "other" bin.
        for i in 0..3000i64 {
            col.push(Value::Int(if i == 1 { 7 } else { i % 3 }), "x")
                .unwrap();
        }
        let cfg = ColumnStatsConfig {
            hist_bins: 8,
            num_frags: 3,
        };
        let stats = compute_column_stats(&col, AttrKind::Categorical, &cfg);
        let (split_values, has_other) = match &stats.bins {
            BinSpec::Categorical {
                split_values,
                has_other,
                ..
            } => (*split_values, *has_other),
            _ => panic!("categorical spec"),
        };
        assert!(has_other, "sampled fit must reserve an unknown bin");
        // Encoding the unseen key routes to the reserved bin — distinct
        // from the missing bin.
        let encoded = stats.bins.encode_keys([Some(7u64), None]);
        assert_eq!(encoded.code(0), split_values);
        assert!(!encoded.is_missing(0));
        assert!(encoded.is_missing(1));
    }

    #[test]
    fn base_table_stats_memoizes_and_resolves() {
        let mut db = cajade_storage::Database::new("b");
        db.create_table(
            cajade_storage::SchemaBuilder::new("t")
                .column_pk("id", DataType::Int, AttrKind::Categorical)
                .column("x", DataType::Float, AttrKind::Numeric)
                .build(),
        )
        .unwrap();
        for i in 0..5i64 {
            db.table_mut("t")
                .unwrap()
                .push_row(vec![Value::Int(i), Value::Float(i as f64)])
                .unwrap();
        }
        let cfg = ColumnStatsConfig {
            hist_bins: 8,
            num_frags: 3,
        };
        let provider = BaseTableStats::new(&db, cfg);
        let a = provider.column_stats("t", "x").unwrap();
        let b = provider.column_stats("t", "x").unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second request served from the memo");
        assert!(provider.column_stats("t", "nope").is_none());
        assert!(provider.column_stats("nope", "x").is_none());
    }

    #[test]
    fn config_fingerprint_separates_knobs() {
        let a = ColumnStatsConfig {
            hist_bins: 32,
            num_frags: 6,
        };
        let b = ColumnStatsConfig {
            hist_bins: 32,
            num_frags: 7,
        };
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), a.fingerprint());
    }
}
