//! Numeric-domain fragmentation (paper §3.4): "we split the domain of
//! each numerical attribute into a fixed number λ#frag of fragments (e.g.,
//! quartiles) and only use boundaries of these fragments when generating
//! refinements. For example, for λ#frag = 3 we would use the minimum,
//! median, and maximum value."

use cajade_graph::Apt;

use crate::stats::STATS_SAMPLE_CAP;

/// Computes per-field threshold candidates: `num_frags` quantile
/// boundaries of the non-null **finite** values of `field` over the APT
/// rows in `rows` (or all rows when `rows` is `None`). Boundaries are
/// deduplicated; constant columns yield a single boundary.
///
/// Large inputs are strided down to at most [`STATS_SAMPLE_CAP`]
/// positions before the quantile sort — the same deterministic
/// ≤512-value sampling the shared column-statistics path uses — so this
/// fallback (taken for fields the cross-graph stats cache cannot serve,
/// e.g. provenance-table columns) stays O(sample), not O(rows), as the
/// APT grows. Boundaries are approximate quantiles above the cap;
/// inputs at or below it are read exhaustively, so small fixtures see
/// exact quantiles.
///
/// Non-finite cells (`NaN`, `±∞` — reachable through CSV ingestion, since
/// `"NaN".parse::<f64>()` succeeds) are routed to the same fate as NULLs:
/// they contribute no boundary. A `NaN` threshold would poison every
/// refinement predicate built from it (`x ≤ NaN` matches nothing), and an
/// infinite one is vacuous; before this filter a single `NaN` cell
/// panicked the sort.
pub fn fragment_boundaries(
    apt: &Apt,
    field: usize,
    rows: Option<&[u32]>,
    num_frags: usize,
) -> Vec<f64> {
    // Non-finite routing happens once, in `quantile_boundaries`.
    let vals: Vec<f64> = match rows {
        Some(rows) => strided(rows.len())
            .filter_map(|i| apt.columns[field].f64_at(rows[i] as usize))
            .collect(),
        None => strided(apt.num_rows)
            .filter_map(|r| apt.columns[field].f64_at(r))
            .collect(),
    };
    quantile_boundaries(vals, num_frags)
}

/// Deterministic ≤[`STATS_SAMPLE_CAP`]-position stride over `0..n`.
fn strided(n: usize) -> impl Iterator<Item = usize> {
    let step = if n > STATS_SAMPLE_CAP {
        n.div_ceil(STATS_SAMPLE_CAP)
    } else {
        1
    };
    (0..n).step_by(step)
}

/// The quantile-picking core of [`fragment_boundaries`], shared with the
/// cross-graph column-statistics path (which feeds it base-table values
/// instead of APT gathers): sorts the finite values and returns
/// `num_frags` evenly spaced quantiles, deduplicated.
pub fn quantile_boundaries(mut vals: Vec<f64>, num_frags: usize) -> Vec<f64> {
    vals.retain(|v| v.is_finite());
    if vals.is_empty() || num_frags == 0 {
        return Vec::new();
    }
    vals.sort_by(f64::total_cmp);

    let n = vals.len();
    let mut out = Vec::with_capacity(num_frags);
    if num_frags == 1 {
        out.push(vals[n / 2]);
    } else {
        for i in 0..num_frags {
            // Evenly spaced quantiles from min (i=0) to max (i=last).
            let q = i as f64 / (num_frags - 1) as f64;
            let idx = ((n - 1) as f64 * q).round() as usize;
            out.push(vals[idx]);
        }
    }
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cajade_graph::JoinGraph;
    use cajade_query::{parse_sql, ProvenanceTable};
    use cajade_storage::{AttrKind, DataType, Database, SchemaBuilder, Value};

    fn apt_with_values(vals: &[Option<i64>]) -> (Database, Apt) {
        let mut db = Database::new("f");
        db.create_table(
            SchemaBuilder::new("t")
                .column_pk("id", DataType::Int, AttrKind::Categorical)
                .column("grp", DataType::Str, AttrKind::Categorical)
                .column("x", DataType::Int, AttrKind::Numeric)
                .build(),
        )
        .unwrap();
        let g = db.intern("g");
        for (i, v) in vals.iter().enumerate() {
            let x = v.map(Value::Int).unwrap_or(Value::Null);
            db.table_mut("t")
                .unwrap()
                .push_row(vec![Value::Int(i as i64), Value::Str(g), x])
                .unwrap();
        }
        let q = parse_sql("SELECT count(*) AS c, grp FROM t GROUP BY grp").unwrap();
        let pt = ProvenanceTable::compute(&db, &q).unwrap();
        let apt = Apt::materialize(&db, &pt, &JoinGraph::pt_only()).unwrap();
        (db, apt)
    }

    #[test]
    fn three_frags_give_min_median_max() {
        let (_db, apt) = apt_with_values(&[Some(1), Some(2), Some(3), Some(4), Some(5)]);
        let x = apt.field_index("prov_t_x").unwrap();
        assert_eq!(fragment_boundaries(&apt, x, None, 3), vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn quartiles() {
        let vals: Vec<Option<i64>> = (0..101).map(Some).collect();
        let (_db, apt) = apt_with_values(&vals);
        let x = apt.field_index("prov_t_x").unwrap();
        assert_eq!(
            fragment_boundaries(&apt, x, None, 5),
            vec![0.0, 25.0, 50.0, 75.0, 100.0]
        );
    }

    #[test]
    fn nulls_skipped_and_constants_dedup() {
        let (_db, apt) = apt_with_values(&[Some(7), None, Some(7), Some(7)]);
        let x = apt.field_index("prov_t_x").unwrap();
        assert_eq!(fragment_boundaries(&apt, x, None, 3), vec![7.0]);
    }

    #[test]
    fn all_null_gives_empty() {
        let (_db, apt) = apt_with_values(&[None, None]);
        let x = apt.field_index("prov_t_x").unwrap();
        assert!(fragment_boundaries(&apt, x, None, 3).is_empty());
    }

    #[test]
    fn restricted_rows() {
        let (_db, apt) = apt_with_values(&[Some(1), Some(100), Some(200), Some(300)]);
        let x = apt.field_index("prov_t_x").unwrap();
        // Only rows 0 and 1 in scope.
        assert_eq!(
            fragment_boundaries(&apt, x, Some(&[0, 1]), 2),
            vec![1.0, 100.0]
        );
    }

    fn apt_with_floats(vals: &[Option<f64>]) -> (Database, Apt) {
        let mut db = Database::new("f");
        db.create_table(
            SchemaBuilder::new("t")
                .column_pk("id", DataType::Int, AttrKind::Categorical)
                .column("grp", DataType::Str, AttrKind::Categorical)
                .column("x", DataType::Float, AttrKind::Numeric)
                .build(),
        )
        .unwrap();
        let g = db.intern("g");
        for (i, v) in vals.iter().enumerate() {
            let x = v.map(Value::Float).unwrap_or(Value::Null);
            db.table_mut("t")
                .unwrap()
                .push_row(vec![Value::Int(i as i64), Value::Str(g), x])
                .unwrap();
        }
        let q = parse_sql("SELECT count(*) AS c, grp FROM t GROUP BY grp").unwrap();
        let pt = ProvenanceTable::compute(&db, &q).unwrap();
        let apt = Apt::materialize(&db, &pt, &JoinGraph::pt_only()).unwrap();
        (db, apt)
    }

    /// A literal `NaN` cell (reachable through CSV ingestion) used to
    /// panic the boundary sort; now NaN and ±∞ are routed out like NULLs.
    #[test]
    fn non_finite_cells_yield_finite_boundaries() {
        let (_db, apt) = apt_with_floats(&[
            Some(1.0),
            Some(f64::NAN),
            Some(f64::INFINITY),
            Some(f64::NEG_INFINITY),
            Some(3.0),
            Some(2.0),
            None,
        ]);
        let x = apt.field_index("prov_t_x").unwrap();
        assert_eq!(fragment_boundaries(&apt, x, None, 3), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn all_non_finite_gives_empty() {
        let (_db, apt) = apt_with_floats(&[Some(f64::NAN), Some(f64::INFINITY), None]);
        let x = apt.field_index("prov_t_x").unwrap();
        assert!(fragment_boundaries(&apt, x, None, 4).is_empty());
    }

    #[test]
    fn quantile_boundaries_filters_and_orders() {
        let vals = vec![f64::NAN, 5.0, 1.0, f64::NEG_INFINITY, 3.0];
        assert_eq!(quantile_boundaries(vals, 3), vec![1.0, 3.0, 5.0]);
        assert!(quantile_boundaries(vec![f64::NAN], 3).is_empty());
        assert!(quantile_boundaries(Vec::new(), 3).is_empty());
    }

    /// Above the cap the gather is strided: the boundaries equal the
    /// quantiles of the deterministic ≤512-position sample, proving the
    /// fallback reads O(sample) values regardless of APT size (the
    /// prepare-path step the scale sweep pinned as previously O(rows)).
    #[test]
    fn large_inputs_are_strided_to_the_sample_cap() {
        let n = 10_000usize;
        let vals: Vec<Option<i64>> = (0..n as i64).map(Some).collect();
        let (_db, apt) = apt_with_values(&vals);
        let x = apt.field_index("prov_t_x").unwrap();

        let step = n.div_ceil(STATS_SAMPLE_CAP);
        let sample: Vec<f64> = (0..n).step_by(step).map(|v| v as f64).collect();
        assert!(
            sample.len() <= STATS_SAMPLE_CAP,
            "cap exceeded: {}",
            sample.len()
        );
        assert_eq!(
            fragment_boundaries(&apt, x, None, 5),
            quantile_boundaries(sample.clone(), 5),
            "boundaries must come from the strided sample alone"
        );
        // The row-restricted path strides over the scope, not the APT.
        let scope: Vec<u32> = (0..n as u32).collect();
        assert_eq!(
            fragment_boundaries(&apt, x, Some(&scope), 5),
            quantile_boundaries(sample, 5)
        );
        // And the sampled quantiles still track the true ones closely.
        let b = fragment_boundaries(&apt, x, None, 5);
        for (i, q) in [0.0, 0.25, 0.5, 0.75, 1.0].iter().enumerate() {
            let truth = q * (n - 1) as f64;
            assert!(
                (b[i] - truth).abs() <= step as f64,
                "q{q}: {} vs {truth}",
                b[i]
            );
        }
    }

    #[test]
    fn single_fragment_is_median() {
        let (_db, apt) = apt_with_values(&[Some(1), Some(2), Some(9)]);
        let x = apt.field_index("prov_t_x").unwrap();
        assert_eq!(fragment_boundaries(&apt, x, None, 1), vec![2.0]);
    }
}
