//! LCA pattern-candidate generation (paper §3.2, after Gebaly et al. [19]).
//!
//! "The LCA method generates pattern candidates from a sample by computing
//! the cross product of the sample with itself. A candidate pattern is
//! generated for each pair (t, t′) of tuples from the sample by replacing
//! values of attributes A where t.A ≠ t′.A with a placeholder ∗ and by
//! keeping constants that t and t′ agree upon." Only categorical
//! attributes participate; numeric attributes stay `*` until refinement.

use std::collections::HashSet;

use cajade_graph::Apt;

use crate::pattern::{PatValue, Pattern, Pred, PredOp};

/// Generates deduplicated LCA candidates over `cat_fields` from the APT
/// rows in `sample` (quadratic in the sample size — exactly the cost
/// profile Fig. 10b–e measures).
pub fn lca_candidates(apt: &Apt, sample: &[u32], cat_fields: &[usize]) -> Vec<Pattern> {
    let mut seen: HashSet<Pattern> = HashSet::new();
    let mut out = Vec::new();

    // Pre-extract the categorical cells once (they are compared O(n²) times).
    let cells: Vec<Vec<Option<PatValue>>> = sample
        .iter()
        .map(|&r| {
            cat_fields
                .iter()
                .map(|&f| PatValue::from_value(&apt.value(r as usize, f)))
                .collect()
        })
        .collect();

    let n = cells.len();
    let mut preds: Vec<(usize, Pred)> = Vec::with_capacity(cat_fields.len());
    for i in 0..n {
        for j in (i + 1)..n {
            preds.clear();
            for (k, &field) in cat_fields.iter().enumerate() {
                if let (Some(a), Some(b)) = (cells[i][k], cells[j][k]) {
                    if a == b {
                        preds.push((
                            field,
                            Pred {
                                op: PredOp::Eq,
                                value: a,
                            },
                        ));
                    }
                }
            }
            if preds.is_empty() {
                continue;
            }
            let p = Pattern::from_preds(preds.clone());
            if seen.insert(p.clone()) {
                out.push(p);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cajade_graph::JoinGraph;
    use cajade_query::{parse_sql, ProvenanceTable};
    use cajade_storage::{AttrKind, DataType, Database, SchemaBuilder, Value};

    fn fixture() -> (Database, Apt, Vec<usize>) {
        let mut db = Database::new("lca");
        db.create_table(
            SchemaBuilder::new("t")
                .column_pk("id", DataType::Int, AttrKind::Categorical)
                .column("grp", DataType::Str, AttrKind::Categorical)
                .column("team", DataType::Str, AttrKind::Categorical)
                .column("player", DataType::Str, AttrKind::Categorical)
                .column("pts", DataType::Int, AttrKind::Numeric)
                .build(),
        )
        .unwrap();
        let g = db.intern("g");
        let gsw = db.intern("GSW");
        let mia = db.intern("MIA");
        let curry = db.intern("Curry");
        let lebron = db.intern("LeBron");
        let rows = [
            (1, gsw, curry, 30),
            (2, gsw, curry, 35),
            (3, gsw, lebron, 20),
            (4, mia, lebron, 25),
        ];
        for (id, t, p, x) in rows {
            db.table_mut("t")
                .unwrap()
                .push_row(vec![
                    Value::Int(id),
                    Value::Str(g),
                    Value::Str(t),
                    Value::Str(p),
                    Value::Int(x),
                ])
                .unwrap();
        }
        let q = parse_sql("SELECT count(*) AS c, grp FROM t GROUP BY grp").unwrap();
        let pt = ProvenanceTable::compute(&db, &q).unwrap();
        let apt = Apt::materialize(&db, &pt, &JoinGraph::pt_only()).unwrap();
        let cats = vec![
            apt.field_index("prov_t_team").unwrap(),
            apt.field_index("prov_t_player").unwrap(),
        ];
        (db, apt, cats)
    }

    #[test]
    fn generates_pairwise_meets() {
        let (db, apt, cats) = fixture();
        let sample: Vec<u32> = (0..apt.num_rows as u32).collect();
        let pats = lca_candidates(&apt, &sample, &cats);
        let rendered: HashSet<String> = pats.iter().map(|p| p.render(&apt, db.pool())).collect();
        // Pair (1,2): team=GSW ∧ player=Curry. Pair (1,3)/(2,3): team=GSW.
        // Pair (3,4): player=LeBron. Pair (1,4)/(2,4): no agreement.
        assert!(rendered.contains("prov_t_team=GSW ∧ prov_t_player=Curry"));
        assert!(rendered.contains("prov_t_team=GSW"));
        assert!(rendered.contains("prov_t_player=LeBron"));
        assert_eq!(pats.len(), 3, "{rendered:?}");
    }

    #[test]
    fn numeric_fields_are_ignored() {
        let (_db, apt, cats) = fixture();
        let sample: Vec<u32> = (0..apt.num_rows as u32).collect();
        let pats = lca_candidates(&apt, &sample, &cats);
        let pts = apt.field_index("prov_t_pts").unwrap();
        assert!(pats.iter().all(|p| p.is_free(pts)));
    }

    #[test]
    fn empty_and_singleton_samples() {
        let (_db, apt, cats) = fixture();
        assert!(lca_candidates(&apt, &[], &cats).is_empty());
        assert!(lca_candidates(&apt, &[0], &cats).is_empty());
    }

    #[test]
    fn duplicate_rows_dedup_patterns() {
        let (_db, apt, cats) = fixture();
        let sample = vec![0, 0, 0, 1];
        let pats = lca_candidates(&apt, &sample, &cats);
        // All pairs agree on team=GSW ∧ player=Curry → one pattern.
        assert_eq!(pats.len(), 1);
    }
}
