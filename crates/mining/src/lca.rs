//! LCA pattern-candidate generation (paper §3.2, after Gebaly et al. \[19\]).
//!
//! "The LCA method generates pattern candidates from a sample by computing
//! the cross product of the sample with itself. A candidate pattern is
//! generated for each pair (t, t′) of tuples from the sample by replacing
//! values of attributes A where t.A ≠ t′.A with a placeholder ∗ and by
//! keeping constants that t and t′ agree upon." Only categorical
//! attributes participate; numeric attributes stay `*` until refinement.

use std::collections::{HashMap, HashSet};

use cajade_graph::Apt;

use crate::pattern::{PatValue, Pattern, Pred, PredOp};

/// Generates deduplicated LCA candidates over `cat_fields` from the APT
/// rows in `sample` (quadratic in the sample size — exactly the cost
/// profile Fig. 10b–e measures).
///
/// The O(n²) pair loop runs over per-field dense `u32` dictionary codes,
/// so an agreement check is one integer compare and deduplication hashes
/// a compact `(field, code)` word list; a [`Pattern`] is only materialized
/// the first time a candidate is seen. Duplicate code vectors are
/// collapsed before pairing, so the quadratic factor is the number of
/// *distinct* vectors. The candidate **set** is identical to the
/// value-based pairwise formulation (code equality coincides with
/// [`PatValue`] equality, and a vector appearing twice contributes its
/// self-meet); the emission **order** is the deterministic unique-pair
/// order, which can differ from the original row-pair order when the
/// sample contains duplicates — downstream recall ranking is stable, so
/// only exact recall ties at the k_cat cut can resolve differently.
pub fn lca_candidates(apt: &Apt, sample: &[u32], cat_fields: &[usize]) -> Vec<Pattern> {
    const MISSING: u32 = u32::MAX;
    let k = cat_fields.len();
    let n = sample.len();
    if k == 0 || n < 2 {
        return Vec::new();
    }

    // Dictionary-encode the categorical cells once: row-major code matrix
    // plus a per-field code → value table for pattern materialization.
    let mut dicts: Vec<HashMap<PatValue, u32>> = vec![HashMap::new(); k];
    let mut values: Vec<Vec<PatValue>> = vec![Vec::new(); k];
    let mut codes: Vec<u32> = Vec::with_capacity(n * k);
    for &r in sample {
        for (fi, &f) in cat_fields.iter().enumerate() {
            let code = match PatValue::from_value(&apt.value(r as usize, f)) {
                None => MISSING,
                Some(pv) => *dicts[fi].entry(pv).or_insert_with(|| {
                    values[fi].push(pv);
                    (values[fi].len() - 1) as u32
                }),
            };
            codes.push(code);
        }
    }

    // Collapse duplicate code rows: the pairwise meet only depends on the
    // two rows' code vectors, so the O(n²) loop runs over *distinct*
    // vectors (with a self-pair for any vector appearing at least twice —
    // two identical sample rows agree on all their non-null fields). On
    // categorical-only projections duplicates are the common case, which
    // shrinks the quadratic factor by orders of magnitude.
    let mut first_seen: HashMap<&[u32], usize> = HashMap::new();
    let mut uniq: Vec<usize> = Vec::new(); // unique vector → first row index
    let mut multi: Vec<bool> = Vec::new(); // appears ≥ 2 times
    for i in 0..n {
        let row = &codes[i * k..(i + 1) * k];
        match first_seen.get(row) {
            Some(&u) => multi[u] = true,
            None => {
                first_seen.insert(row, uniq.len());
                uniq.push(i);
                multi.push(false);
            }
        }
    }
    drop(first_seen);

    let m = uniq.len();
    let mut seen: HashSet<Box<[u64]>> = HashSet::new();
    let mut out = Vec::new();
    let mut agree: Vec<u64> = Vec::with_capacity(k);
    for ui in 0..m {
        let ci = &codes[uniq[ui] * k..uniq[ui] * k + k];
        for uj in ui..m {
            if uj == ui && !multi[ui] {
                continue; // a self-pair needs two copies of the row
            }
            let cj = &codes[uniq[uj] * k..uniq[uj] * k + k];
            agree.clear();
            for fi in 0..k {
                let c = ci[fi];
                if c != MISSING && c == cj[fi] {
                    agree.push(((fi as u64) << 32) | c as u64);
                }
            }
            if agree.is_empty() || seen.contains(agree.as_slice()) {
                continue;
            }
            seen.insert(agree.clone().into_boxed_slice());
            let preds = agree
                .iter()
                .map(|&key| {
                    let fi = (key >> 32) as usize;
                    let code = (key & u32::MAX as u64) as usize;
                    (
                        cat_fields[fi],
                        Pred {
                            op: PredOp::Eq,
                            value: values[fi][code],
                        },
                    )
                })
                .collect();
            out.push(Pattern::from_preds(preds));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cajade_graph::JoinGraph;
    use cajade_query::{parse_sql, ProvenanceTable};
    use cajade_storage::{AttrKind, DataType, Database, SchemaBuilder, Value};

    fn fixture() -> (Database, Apt, Vec<usize>) {
        let mut db = Database::new("lca");
        db.create_table(
            SchemaBuilder::new("t")
                .column_pk("id", DataType::Int, AttrKind::Categorical)
                .column("grp", DataType::Str, AttrKind::Categorical)
                .column("team", DataType::Str, AttrKind::Categorical)
                .column("player", DataType::Str, AttrKind::Categorical)
                .column("pts", DataType::Int, AttrKind::Numeric)
                .build(),
        )
        .unwrap();
        let g = db.intern("g");
        let gsw = db.intern("GSW");
        let mia = db.intern("MIA");
        let curry = db.intern("Curry");
        let lebron = db.intern("LeBron");
        let rows = [
            (1, gsw, curry, 30),
            (2, gsw, curry, 35),
            (3, gsw, lebron, 20),
            (4, mia, lebron, 25),
        ];
        for (id, t, p, x) in rows {
            db.table_mut("t")
                .unwrap()
                .push_row(vec![
                    Value::Int(id),
                    Value::Str(g),
                    Value::Str(t),
                    Value::Str(p),
                    Value::Int(x),
                ])
                .unwrap();
        }
        let q = parse_sql("SELECT count(*) AS c, grp FROM t GROUP BY grp").unwrap();
        let pt = ProvenanceTable::compute(&db, &q).unwrap();
        let apt = Apt::materialize(&db, &pt, &JoinGraph::pt_only()).unwrap();
        let cats = vec![
            apt.field_index("prov_t_team").unwrap(),
            apt.field_index("prov_t_player").unwrap(),
        ];
        (db, apt, cats)
    }

    #[test]
    fn generates_pairwise_meets() {
        let (db, apt, cats) = fixture();
        let sample: Vec<u32> = (0..apt.num_rows as u32).collect();
        let pats = lca_candidates(&apt, &sample, &cats);
        let rendered: HashSet<String> = pats.iter().map(|p| p.render(&apt, db.pool())).collect();
        // Pair (1,2): team=GSW ∧ player=Curry. Pair (1,3)/(2,3): team=GSW.
        // Pair (3,4): player=LeBron. Pair (1,4)/(2,4): no agreement.
        assert!(rendered.contains("prov_t_team=GSW ∧ prov_t_player=Curry"));
        assert!(rendered.contains("prov_t_team=GSW"));
        assert!(rendered.contains("prov_t_player=LeBron"));
        assert_eq!(pats.len(), 3, "{rendered:?}");
    }

    #[test]
    fn numeric_fields_are_ignored() {
        let (_db, apt, cats) = fixture();
        let sample: Vec<u32> = (0..apt.num_rows as u32).collect();
        let pats = lca_candidates(&apt, &sample, &cats);
        let pts = apt.field_index("prov_t_pts").unwrap();
        assert!(pats.iter().all(|p| p.is_free(pts)));
    }

    #[test]
    fn empty_and_singleton_samples() {
        let (_db, apt, cats) = fixture();
        assert!(lca_candidates(&apt, &[], &cats).is_empty());
        assert!(lca_candidates(&apt, &[0], &cats).is_empty());
    }

    #[test]
    fn duplicate_rows_dedup_patterns() {
        let (_db, apt, cats) = fixture();
        let sample = vec![0, 0, 0, 1];
        let pats = lca_candidates(&apt, &sample, &cats);
        // All pairs agree on team=GSW ∧ player=Curry → one pattern.
        assert_eq!(pats.len(), 1);
    }
}
