//! The shared column-statistics seam of `prepare_apt_with`:
//!
//! * the pass-through provider reproduces the historical per-APT
//!   fragment boundaries bit for bit,
//! * an injected provider's base-table statistics replace the per-APT
//!   computation for context columns (and only for context columns — PT
//!   fields never consult the provider),
//! * mining through a shared preparation still returns explanations.

use std::sync::{Arc, Mutex};

use cajade_graph::{Apt, JgEdge, JgNode, JoinCond, JoinGraph, NodeLabel};
use cajade_mining::{
    base_column_stats, fragments::fragment_boundaries, mine_prepared, prepare_apt,
    prepare_apt_with, ColumnStats, ColumnStatsConfig, ColumnStatsProvider, MiningParams, Question,
};
use cajade_query::{parse_sql, ProvenanceTable};
use cajade_storage::{AttrKind, DataType, Database, SchemaBuilder, Value};

/// Provider that serves base-table statistics and logs every request.
struct LoggingProvider {
    db: Database,
    cfg: ColumnStatsConfig,
    log: Mutex<Vec<String>>,
}

impl ColumnStatsProvider for LoggingProvider {
    fn column_stats(&self, table: &str, column: &str) -> Option<Arc<ColumnStats>> {
        self.log.lock().unwrap().push(format!("{table}.{column}"));
        base_column_stats(&self.db, table, column, &self.cfg).map(Arc::new)
    }
}

/// main(id, grp, x) × ctx(id, y): ctx has extra rows (ids that never
/// join) carrying extreme `y` values, so base-table quantiles of `ctx.y`
/// differ from the APT gather's.
fn fixture() -> (Database, cajade_query::Query, JoinGraph) {
    let mut db = Database::new("shared");
    db.create_table(
        SchemaBuilder::new("main")
            .column_pk("id", DataType::Int, AttrKind::Categorical)
            .column("grp", DataType::Str, AttrKind::Categorical)
            .column("x", DataType::Int, AttrKind::Numeric)
            .build(),
    )
    .unwrap();
    db.create_table(
        SchemaBuilder::new("ctx")
            .column_pk("id", DataType::Int, AttrKind::Categorical)
            .column("y", DataType::Int, AttrKind::Numeric)
            .build(),
    )
    .unwrap();
    let a = db.intern("a");
    let b = db.intern("b");
    for i in 0..8i64 {
        db.table_mut("main")
            .unwrap()
            .push_row(vec![
                Value::Int(i),
                Value::Str(if i % 2 == 0 { a } else { b }),
                Value::Int(i * 10),
            ])
            .unwrap();
    }
    // Joining ctx rows: y in 0..8. Non-joining rows: y = 1000+.
    for i in 0..8i64 {
        db.table_mut("ctx")
            .unwrap()
            .push_row(vec![Value::Int(i), Value::Int(i)])
            .unwrap();
    }
    for i in 0..8i64 {
        db.table_mut("ctx")
            .unwrap()
            .push_row(vec![Value::Int(100 + i), Value::Int(1000 + i)])
            .unwrap();
    }
    let q = parse_sql("SELECT count(*) AS c, grp FROM main GROUP BY grp").unwrap();

    let mut g = JoinGraph::pt_only();
    g.nodes.push(JgNode {
        label: NodeLabel::Rel("ctx".into()),
    });
    g.edges.push(JgEdge {
        from: 0,
        to: 1,
        cond: JoinCond::on(&[("id", "id")]),
        schema_edge: 0,
        cond_idx: 0,
        pt_from_idx: Some(0),
    });
    (db, q, g)
}

fn params() -> MiningParams {
    MiningParams {
        lambda_pat_samp: 1.0,
        lambda_f1_samp: 1.0,
        feature_selection: false, // keep every field → deterministic frag list
        ..Default::default()
    }
}

#[test]
fn shared_stats_replace_per_apt_fragments_for_context_columns() {
    let (db, q, graph) = fixture();
    let pt = ProvenanceTable::compute(&db, &q).unwrap();
    let apt = Apt::materialize(&db, &pt, &graph).unwrap();
    let params = params();

    let provider = LoggingProvider {
        db: db.clone(),
        cfg: ColumnStatsConfig::from_params(&params),
        log: Mutex::new(Vec::new()),
    };

    let pass_through = prepare_apt(&apt, &pt, &params);
    let shared = prepare_apt_with(&apt, &pt, &params, &provider);

    let y = apt.field_index("ctx.y").unwrap();
    let x = apt.field_index("prov_main_x").unwrap();

    // Pass-through == historical per-APT computation.
    let apt_y = fragment_boundaries(&apt, y, None, params.num_frags);
    let pt_frag = |prep: &cajade_mining::PreparedApt, f: usize| {
        prep.frag
            .iter()
            .find(|(field, _)| *field == f)
            .map(|(_, b)| b.clone())
            .expect("field fragmented")
    };
    assert_eq!(pt_frag(&pass_through, y), apt_y);

    // Shared path: ctx.y boundaries come from the *base table* (which
    // contains the non-joining 1000+ values), not the APT gather.
    let base_y = pt_frag(&shared, y);
    assert_ne!(base_y, apt_y, "base-table quantiles must differ by design");
    assert!(base_y.iter().any(|&v| v >= 1000.0));
    let expected = base_column_stats(&db, "ctx", "y", &ColumnStatsConfig::from_params(&params))
        .unwrap()
        .fragments;
    assert_eq!(base_y, expected);

    // PT fields never consult the provider; their boundaries are per-APT
    // under both providers.
    assert_eq!(pt_frag(&shared, x), pt_frag(&pass_through, x));
    let log = provider.log.lock().unwrap().clone();
    assert!(log.iter().all(|e| e.starts_with("ctx.")), "log: {log:?}");
    assert!(log.contains(&"ctx.y".to_string()));

    // Mining through the shared preparation still works end to end.
    let question = Question::TwoPoint { t1: 0, t2: 1 };
    let outcome = mine_prepared(&shared, &apt, &pt, &question, &params);
    assert!(!outcome.explanations.is_empty());
}
