//! The vectorized scoring engine is a *verified-equivalent* replacement
//! for the scalar `Scorer`:
//!
//! 1. a property test asserts bit-identical [`PatternMetrics`] between
//!    [`ScoreIndex`] and [`Scorer`] on randomized APTs (nulls, join
//!    fan-out, mixed types), random patterns (Eq/Le/Ge), random row
//!    samples, and both question kinds;
//! 2. determinism tests assert that `mine_apt` and the prepared path
//!    produce identical explanations (same patterns, same order, same
//!    metrics) with the engine on vs off.

use proptest::prelude::*;

use cajade_graph::{Apt, JoinGraph};
use cajade_mining::{
    mine_apt, mine_prepared, prepare_apt, MiningParams, PatValue, Pattern, Pred, PredOp, Question,
    ScoreEngine, ScoreIndex, Scorer,
};
use cajade_query::{parse_sql, ProvenanceTable};
use cajade_storage::{AttrKind, DataType, Database, SchemaBuilder, Value};

/// Builds a database from randomized rows: `grp` (k groups), a
/// categorical `cat`, and two numeric columns with optional nulls —
/// optionally joined to a fan-out context table so one PT row extends to
/// several APT rows.
#[allow(clippy::type_complexity)]
fn build_apt(
    rows: &[(u8, u8, Option<i64>, Option<i64>)],
    fanout: &[u8],
) -> (Database, Apt, ProvenanceTable, usize) {
    let mut db = Database::new("p");
    db.create_table(
        SchemaBuilder::new("t")
            .column_pk("id", DataType::Int, AttrKind::Categorical)
            .column("grp", DataType::Str, AttrKind::Categorical)
            .column("cat", DataType::Str, AttrKind::Categorical)
            .column("x", DataType::Int, AttrKind::Numeric)
            .column("y", DataType::Float, AttrKind::Numeric)
            .build(),
    )
    .unwrap();
    let grp_ids: Vec<_> = (0..4).map(|g| db.intern(&format!("g{g}"))).collect();
    let cat_ids: Vec<_> = (0..3).map(|c| db.intern(&format!("c{c}"))).collect();
    for (i, &(g, c, x, y)) in rows.iter().enumerate() {
        db.table_mut("t")
            .unwrap()
            .push_row(vec![
                Value::Int(i as i64),
                Value::Str(grp_ids[g as usize % 4]),
                Value::Str(cat_ids[c as usize % 3]),
                x.map(Value::Int).unwrap_or(Value::Null),
                y.map(|v| Value::Float(v as f64 / 2.0))
                    .unwrap_or(Value::Null),
            ])
            .unwrap();
    }
    let q = parse_sql("SELECT count(*) AS c, grp FROM t GROUP BY grp").unwrap();
    let pt = ProvenanceTable::compute(&db, &q).unwrap();

    let graph = if fanout.is_empty() {
        JoinGraph::pt_only()
    } else {
        // Context table: row `id` appears `fanout[id % len]` times, so some
        // PT rows extend to several APT rows and some to none.
        db.create_table(
            SchemaBuilder::new("ctx")
                .column_pk("id", DataType::Int, AttrKind::Categorical)
                .column_pk("copy", DataType::Int, AttrKind::Categorical)
                .column("z", DataType::Int, AttrKind::Numeric)
                .build(),
        )
        .unwrap();
        for i in 0..rows.len() {
            let copies = fanout[i % fanout.len()] % 4;
            for copy in 0..copies {
                db.table_mut("ctx")
                    .unwrap()
                    .push_row(vec![
                        Value::Int(i as i64),
                        Value::Int(copy as i64),
                        Value::Int((i as i64 * 7 + copy as i64) % 13),
                    ])
                    .unwrap();
            }
        }
        let mut g = JoinGraph::pt_only();
        g.nodes.push(cajade_graph::JgNode {
            label: cajade_graph::NodeLabel::Rel("ctx".into()),
        });
        g.edges.push(cajade_graph::JgEdge {
            from: 0,
            to: 1,
            cond: cajade_graph::JoinCond::on(&[("id", "id")]),
            schema_edge: 0,
            cond_idx: 0,
            pt_from_idx: Some(0),
        });
        g
    };
    let apt = Apt::materialize(&db, &pt, &graph).unwrap();
    let groups = pt.rows_of_group.len();
    (db, apt, pt, groups)
}

fn pattern_from_spec(apt: &Apt, db: &Database, spec: &[(u8, u8, i64)]) -> Pattern {
    let fields = apt.pattern_fields();
    let preds = spec
        .iter()
        .map(|&(fsel, opsel, c)| {
            let field = fields[fsel as usize % fields.len()];
            let pred = match opsel % 4 {
                0 => Pred {
                    op: PredOp::Le,
                    value: PatValue::Int(c),
                },
                1 => Pred {
                    op: PredOp::Ge,
                    value: PatValue::Float((c as f64 / 2.0).to_bits()),
                },
                2 => Pred {
                    op: PredOp::Eq,
                    value: PatValue::Int(c),
                },
                _ => Pred {
                    op: PredOp::Eq,
                    value: PatValue::Str(
                        db.lookup_str(&format!("c{}", c.rem_euclid(3))).unwrap().0,
                    ),
                },
            };
            (field, pred)
        })
        .collect();
    Pattern::from_preds(preds)
}

#[test]
fn prop_vectorized_metrics_bit_identical_to_scalar() {
    let mut runner = proptest::test_runner::TestRunner::deterministic();
    let strategy = (
        proptest::collection::vec(
            (
                0u8..4,
                0u8..3,
                (proptest::bool::ANY, -5i64..15),
                (proptest::bool::ANY, -5i64..15),
            ),
            2..40,
        ),
        proptest::collection::vec(0u8..4, 0..6),
        proptest::collection::vec((0u8..8, 0u8..4, -6i64..16), 0..4),
        proptest::collection::vec(proptest::bool::ANY, 0..40),
        0u8..6,
        proptest::bool::ANY,
    );
    runner
        .run(
            &strategy,
            |(rows, fanout, pat_spec, sample_bits, qsel, single_point)| {
                let rows: Vec<(u8, u8, Option<i64>, Option<i64>)> = rows
                    .into_iter()
                    .map(|(g, c, (has_x, x), (has_y, y))| {
                        (g, c, has_x.then_some(x), has_y.then_some(y))
                    })
                    .collect();
                let (db, apt, pt, groups) = build_apt(&rows, &fanout);
                let pattern = pattern_from_spec(&apt, &db, &pat_spec);

                // Random sample of APT rows (possibly empty / possibly all).
                let sample: Vec<u32> = (0..apt.num_rows as u32)
                    .filter(|&r| {
                        sample_bits
                            .get(r as usize % sample_bits.len().max(1))
                            .copied()
                            .unwrap_or(true)
                    })
                    .collect();

                let questions: Vec<Question> = if single_point {
                    vec![Question::SinglePoint {
                        t: qsel as usize % groups.max(1),
                    }]
                } else {
                    vec![Question::TwoPoint {
                        t1: qsel as usize % groups.max(1),
                        t2: (qsel as usize + 1) % groups.max(1),
                    }]
                };

                for question in &questions {
                    for &(primary, secondary) in &question.directions() {
                        // Exact scan.
                        let scalar = Scorer::exact(&apt, &pt).score(&pattern, primary, secondary);
                        let vector =
                            ScoreIndex::exact(&apt, &pt).score(&pattern, primary, secondary);
                        prop_assert_eq!(scalar, vector);

                        // Sampled scan — same fixed sample for both engines.
                        let scalar = Scorer::sampled(&apt, &pt, sample.clone())
                            .score(&pattern, primary, secondary);
                        let vector = ScoreIndex::sampled(&apt, &pt, &sample)
                            .score(&pattern, primary, secondary);
                        prop_assert_eq!(scalar, vector);
                    }
                }
                Ok(())
            },
        )
        .unwrap();
}

fn star_fixture() -> (Database, cajade_query::Query) {
    let mut db = Database::new("m");
    db.create_table(
        SchemaBuilder::new("t")
            .column_pk("id", DataType::Int, AttrKind::Categorical)
            .column("season", DataType::Str, AttrKind::Categorical)
            .column("player", DataType::Str, AttrKind::Categorical)
            .column("pts", DataType::Int, AttrKind::Numeric)
            .column("noise", DataType::Int, AttrKind::Numeric)
            .build(),
    )
    .unwrap();
    let s1 = db.intern("s1");
    let s2 = db.intern("s2");
    let star = db.intern("star");
    let other = db.intern("other");
    let mut id = 0i64;
    for (season, base) in [(s1, 10), (s2, 30)] {
        for i in 0..40i64 {
            id += 1;
            db.table_mut("t")
                .unwrap()
                .push_row(vec![
                    Value::Int(id),
                    Value::Str(season),
                    Value::Str(if i % 2 == 0 { star } else { other }),
                    Value::Int(if i % 2 == 0 { base + i % 5 } else { 20 }),
                    Value::Int((i * 13) % 7),
                ])
                .unwrap();
        }
    }
    let q = parse_sql("SELECT count(*) AS c, season FROM t GROUP BY season").unwrap();
    (db, q)
}

fn rendered(out: &cajade_mining::MiningOutcome, apt: &Apt, db: &Database) -> Vec<String> {
    out.explanations
        .iter()
        .map(|e| {
            format!(
                "{}|{}|{:?}|{:?}|{:.12}",
                e.pattern.render(apt, db.pool()),
                e.primary_group,
                e.secondary_group,
                (e.metrics.tp, e.metrics.a1, e.metrics.fp, e.metrics.a2),
                e.metrics.f_score
            )
        })
        .collect()
}

/// `mine_apt` output (same explanations, same order) is unchanged with
/// the engine on vs off — across sampling configurations and both
/// question kinds.
#[test]
fn mine_apt_identical_with_engine_on_and_off() {
    let (db, q) = star_fixture();
    let pt = ProvenanceTable::compute(&db, &q).unwrap();
    let apt = Apt::materialize(&db, &pt, &JoinGraph::pt_only()).unwrap();
    for (pat_samp, f1_samp) in [(1.0, 1.0), (1.0, 0.5), (0.6, 0.3)] {
        for question in [
            Question::TwoPoint { t1: 1, t2: 0 },
            Question::SinglePoint { t: 0 },
        ] {
            let mut params = MiningParams {
                lambda_pat_samp: pat_samp,
                lambda_f1_samp: f1_samp,
                ..Default::default()
            };
            params.engine = ScoreEngine::Vectorized;
            let vectorized = mine_apt(&apt, &pt, &question, &params);
            params.engine = ScoreEngine::Scalar;
            let scalar = mine_apt(&apt, &pt, &question, &params);
            assert_eq!(
                rendered(&vectorized, &apt, &db),
                rendered(&scalar, &apt, &db),
                "engine changed mine_apt output (λ_pat={pat_samp}, λ_F1={f1_samp}, {question:?})"
            );
            assert!(!vectorized.explanations.is_empty());
            // Upper-bound pruning runs on the vectorized engine only, so
            // evaluation *counts* only line up with it disabled (outputs
            // above are identical either way).
            params.refine_ub_prune = false;
            let scalar_noub = mine_apt(&apt, &pt, &question, &params);
            params.engine = ScoreEngine::Vectorized;
            let vectorized_noub = mine_apt(&apt, &pt, &question, &params);
            assert_eq!(
                vectorized_noub.patterns_evaluated,
                scalar_noub.patterns_evaluated
            );
            assert_eq!(vectorized_noub.timings.ub_pruned_children, 0);
        }
    }
}

/// The prepared (question-independent) path is likewise engine-invariant.
#[test]
fn mine_prepared_identical_with_engine_on_and_off() {
    let (db, q) = star_fixture();
    let pt = ProvenanceTable::compute(&db, &q).unwrap();
    let apt = Apt::materialize(&db, &pt, &JoinGraph::pt_only()).unwrap();
    for f1_samp in [1.0, 0.4] {
        let mut params = MiningParams {
            lambda_f1_samp: f1_samp,
            lambda_pat_samp: 1.0,
            ..Default::default()
        };
        let question = Question::TwoPoint { t1: 1, t2: 0 };
        params.engine = ScoreEngine::Vectorized;
        let prep_v = prepare_apt(&apt, &pt, &params);
        let vectorized = mine_prepared(&prep_v, &apt, &pt, &question, &params);
        params.engine = ScoreEngine::Scalar;
        let prep_s = prepare_apt(&apt, &pt, &params);
        let scalar = mine_prepared(&prep_s, &apt, &pt, &question, &params);
        assert_eq!(
            rendered(&vectorized, &apt, &db),
            rendered(&scalar, &apt, &db),
            "engine changed mine_prepared output (λ_F1={f1_samp})"
        );
        assert!(!vectorized.explanations.is_empty());
    }
}

/// A fresh question on an existing `PreparedApt` gives the same answer as
/// preparing from scratch (the service's warm-vs-cold identity), and its
/// per-question timings report the skipped phases as zero.
#[test]
fn warm_prepared_matches_fresh_preparation() {
    let (db, q) = star_fixture();
    let pt = ProvenanceTable::compute(&db, &q).unwrap();
    let apt = Apt::materialize(&db, &pt, &JoinGraph::pt_only()).unwrap();
    let params = MiningParams::default();
    let warm_prep = prepare_apt(&apt, &pt, &params);

    for question in [
        Question::TwoPoint { t1: 0, t2: 1 },
        Question::TwoPoint { t1: 1, t2: 0 },
        Question::SinglePoint { t: 1 },
    ] {
        let fresh_prep = prepare_apt(&apt, &pt, &params);
        let fresh = mine_prepared(&fresh_prep, &apt, &pt, &question, &params);
        let warm = mine_prepared(&warm_prep, &apt, &pt, &question, &params);
        assert_eq!(rendered(&warm, &apt, &db), rendered(&fresh, &apt, &db));
        assert_eq!(warm.timings.feature_selection, std::time::Duration::ZERO);
        assert_eq!(warm.timings.gen_pat_cand, std::time::Duration::ZERO);
        assert_eq!(warm.timings.prepare, std::time::Duration::ZERO);
    }
}
