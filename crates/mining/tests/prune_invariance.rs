//! Property test: F-score upper-bound pruning never changes `mine_apt`
//! output.
//!
//! The prune skips lattice children whose TP upper bound
//! (`min(tp_parent, tp_pred)`) caps recall at ≤ λ_recall in every
//! direction — children that could neither be kept nor (by
//! Proposition 3.1) seed a keepable refinement — and, when a single
//! pattern is requested, children whose F-score bound cannot beat the
//! best kept F so far. Explanations (patterns, order, metrics) must be
//! identical with the prune on and off, across randomized databases, join
//! fan-out, samples, question kinds, recall thresholds, and `top_k`.

use std::cell::Cell;

use proptest::prelude::*;

use cajade_graph::{Apt, JoinGraph};
use cajade_mining::{mine_apt, MiningParams, Question};
use cajade_query::{parse_sql, ProvenanceTable};
use cajade_storage::{AttrKind, DataType, Database, SchemaBuilder, Value};

/// Randomized database: `grp` (up to 4 groups), a categorical, two
/// numeric columns with optional nulls, optionally joined to a fan-out
/// context table.
#[allow(clippy::type_complexity)]
fn build_apt(
    rows: &[(u8, u8, Option<i64>, Option<i64>)],
    fanout: &[u8],
) -> (Database, Apt, ProvenanceTable, usize) {
    let mut db = Database::new("p");
    db.create_table(
        SchemaBuilder::new("t")
            .column_pk("id", DataType::Int, AttrKind::Categorical)
            .column("grp", DataType::Str, AttrKind::Categorical)
            .column("cat", DataType::Str, AttrKind::Categorical)
            .column("x", DataType::Int, AttrKind::Numeric)
            .column("y", DataType::Float, AttrKind::Numeric)
            .build(),
    )
    .unwrap();
    let grp_ids: Vec<_> = (0..4).map(|g| db.intern(&format!("g{g}"))).collect();
    let cat_ids: Vec<_> = (0..3).map(|c| db.intern(&format!("c{c}"))).collect();
    for (i, &(g, c, x, y)) in rows.iter().enumerate() {
        db.table_mut("t")
            .unwrap()
            .push_row(vec![
                Value::Int(i as i64),
                Value::Str(grp_ids[g as usize % 4]),
                Value::Str(cat_ids[c as usize % 3]),
                x.map(Value::Int).unwrap_or(Value::Null),
                y.map(|v| Value::Float(v as f64 / 2.0))
                    .unwrap_or(Value::Null),
            ])
            .unwrap();
    }
    let q = parse_sql("SELECT count(*) AS c, grp FROM t GROUP BY grp").unwrap();
    let pt = ProvenanceTable::compute(&db, &q).unwrap();

    let graph = if fanout.is_empty() {
        JoinGraph::pt_only()
    } else {
        db.create_table(
            SchemaBuilder::new("ctx")
                .column_pk("id", DataType::Int, AttrKind::Categorical)
                .column_pk("copy", DataType::Int, AttrKind::Categorical)
                .column("z", DataType::Int, AttrKind::Numeric)
                .build(),
        )
        .unwrap();
        for i in 0..rows.len() {
            let copies = fanout[i % fanout.len()] % 4;
            for copy in 0..copies {
                db.table_mut("ctx")
                    .unwrap()
                    .push_row(vec![
                        Value::Int(i as i64),
                        Value::Int(copy as i64),
                        Value::Int((i as i64 * 7 + copy as i64) % 13),
                    ])
                    .unwrap();
            }
        }
        let mut g = JoinGraph::pt_only();
        g.nodes.push(cajade_graph::JgNode {
            label: cajade_graph::NodeLabel::Rel("ctx".into()),
        });
        g.edges.push(cajade_graph::JgEdge {
            from: 0,
            to: 1,
            cond: cajade_graph::JoinCond::on(&[("id", "id")]),
            schema_edge: 0,
            cond_idx: 0,
            pt_from_idx: Some(0),
        });
        g
    };
    let apt = Apt::materialize(&db, &pt, &graph).unwrap();
    let groups = pt.rows_of_group.len();
    (db, apt, pt, groups)
}

fn rendered(out: &cajade_mining::MiningOutcome, apt: &Apt, db: &Database) -> Vec<String> {
    out.explanations
        .iter()
        .map(|e| {
            format!(
                "{}|{}|{:?}|{:?}|{:.12}",
                e.pattern.render(apt, db.pool()),
                e.primary_group,
                e.secondary_group,
                (e.metrics.tp, e.metrics.a1, e.metrics.fp, e.metrics.a2),
                e.metrics.f_score
            )
        })
        .collect()
}

#[test]
fn prop_ub_pruning_never_changes_mine_apt_output() {
    let pruned_total = Cell::new(0u64);
    let mut runner = proptest::test_runner::TestRunner::deterministic();
    let strategy = (
        proptest::collection::vec(
            (
                0u8..4,
                0u8..3,
                (proptest::bool::ANY, -5i64..15),
                (proptest::bool::ANY, -5i64..15),
            ),
            4..40,
        ),
        proptest::collection::vec(0u8..4, 0..6),
        0u8..6,              // question selector
        proptest::bool::ANY, // single point?
        0u8..3,              // λ_recall selector
        0u8..4,              // bit 0: top_k = 1?  bit 1: λ_F1 sampling?
    );
    runner
        .run(
            &strategy,
            |(rows, fanout, qsel, single_point, recall_sel, mode)| {
                let (top1, f1_sample) = (mode & 1 != 0, mode & 2 != 0);
                let rows: Vec<(u8, u8, Option<i64>, Option<i64>)> = rows
                    .into_iter()
                    .map(|(g, c, (has_x, x), (has_y, y))| {
                        (g, c, has_x.then_some(x), has_y.then_some(y))
                    })
                    .collect();
                let (db, apt, pt, groups) = build_apt(&rows, &fanout);
                let question = if single_point {
                    Question::SinglePoint {
                        t: qsel as usize % groups.max(1),
                    }
                } else {
                    Question::TwoPoint {
                        t1: qsel as usize % groups.max(1),
                        t2: (qsel as usize + 1) % groups.max(1),
                    }
                };
                let mut params = MiningParams {
                    lambda_recall: [0.2, 0.5, 0.8][recall_sel as usize],
                    lambda_pat_samp: 1.0,
                    lambda_f1_samp: if f1_sample { 0.5 } else { 1.0 },
                    top_k: if top1 { 1 } else { 10 },
                    ..Default::default()
                };

                params.refine_ub_prune = true;
                let pruned = mine_apt(&apt, &pt, &question, &params);
                params.refine_ub_prune = false;
                let unpruned = mine_apt(&apt, &pt, &question, &params);

                prop_assert_eq!(rendered(&pruned, &apt, &db), rendered(&unpruned, &apt, &db));
                // Pruning only ever *removes* evaluations.
                prop_assert!(pruned.patterns_evaluated <= unpruned.patterns_evaluated);
                prop_assert_eq!(unpruned.timings.ub_pruned_children, 0);
                pruned_total.set(pruned_total.get() + pruned.timings.ub_pruned_children);
                Ok(())
            },
        )
        .unwrap();
    // The property is vacuous if the prune never fires: across the
    // deterministic case set it must have skipped real children.
    assert!(
        pruned_total.get() > 0,
        "upper-bound pruning never fired across the generated cases"
    );
}
