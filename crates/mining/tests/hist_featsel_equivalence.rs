//! Pins the histogram-forest feature selection against the float-matrix
//! reference trainer on fixed seeds:
//!
//! * the selected feature sets (`num_fields` / `cat_fields`) are equal,
//! * the relevance ranking agrees on what matters (the planted signal
//!   family outranks noise under both trainers),
//! * `mine_apt` returns identical explanations under either
//!   [`FeatSelEngine`], so switching the default trainer did not change
//!   the mined top-k.

use cajade_graph::{Apt, JoinGraph};
use cajade_mining::featsel::{
    hist_scan_order, select_features, select_features_global, select_features_hist,
    select_features_hist_global, FeatSelConfig,
};
use cajade_mining::{mine_apt, FeatSelEngine, MiningParams, NoSharedStats, Question};
use cajade_query::{parse_sql, ProvenanceTable};
use cajade_storage::{AttrKind, DataType, Database, SchemaBuilder, Value};

/// `signal` separates the two groups; `noise` does not; `dup` duplicates
/// `signal` (must cluster with it); `label_cat` is a categorical
/// restatement of the signal.
fn fixture() -> (Database, cajade_query::Query) {
    let mut db = Database::new("fs");
    db.create_table(
        SchemaBuilder::new("t")
            .column_pk("id", DataType::Int, AttrKind::Categorical)
            .column("grp", DataType::Str, AttrKind::Categorical)
            .column("signal", DataType::Int, AttrKind::Numeric)
            .column("dup", DataType::Int, AttrKind::Numeric)
            .column("noise", DataType::Int, AttrKind::Numeric)
            .column("label_cat", DataType::Str, AttrKind::Categorical)
            .build(),
    )
    .unwrap();
    let g1 = db.intern("g1");
    let g2 = db.intern("g2");
    let a = db.intern("a");
    let b = db.intern("b");
    for i in 0..200i64 {
        let grp = if i % 2 == 0 { g1 } else { g2 };
        let signal = if i % 2 == 0 { i % 40 } else { 60 + i % 40 };
        let cat = if i % 2 == 0 { a } else { b };
        db.table_mut("t")
            .unwrap()
            .push_row(vec![
                Value::Int(i),
                Value::Str(grp),
                Value::Int(signal),
                Value::Int(signal * 2),
                Value::Int((i * 7918) % 100), // even multiplier: genuine noise
                Value::Str(cat),
            ])
            .unwrap();
    }
    let q = parse_sql("SELECT count(*) AS c, grp FROM t GROUP BY grp").unwrap();
    (db, q)
}

fn setup() -> (Database, cajade_query::Query, ProvenanceTable, Apt) {
    let (db, q) = fixture();
    let pt = ProvenanceTable::compute(&db, &q).unwrap();
    let apt = Apt::materialize(&db, &pt, &JoinGraph::pt_only()).unwrap();
    (db, q, pt, apt)
}

fn sorted(mut v: Vec<usize>) -> Vec<usize> {
    v.sort_unstable();
    v
}

#[test]
fn question_selection_sets_match_float_trainer() {
    let (_db, _q, pt, apt) = setup();
    let cfg = FeatSelConfig::default();
    let question = Question::TwoPoint { t1: 0, t2: 1 };
    let float = select_features(&apt, &pt, &question, &cfg);
    let order = hist_scan_order(&apt, &pt, None);
    let hist = select_features_hist(&apt, &pt, &order, &question, &cfg, &NoSharedStats);

    assert_eq!(
        sorted(float.num_fields.clone()),
        sorted(hist.num_fields.clone()),
        "numeric selections diverged: float {float:?} vs hist {hist:?}"
    );
    assert_eq!(
        sorted(float.cat_fields.clone()),
        sorted(hist.cat_fields.clone()),
        "categorical selections diverged"
    );

    // Both trainers agree the signal family dwarfs the noise column.
    let family = [
        apt.field_index("prov_t_signal").unwrap(),
        apt.field_index("prov_t_dup").unwrap(),
        apt.field_index("prov_t_label__cat").unwrap(),
    ];
    let noise = apt.field_index("prov_t_noise").unwrap();
    for fs in [&float, &hist] {
        let best_family = family.iter().map(|&f| fs.relevance[f]).fold(0.0, f64::max);
        assert!(
            best_family > fs.relevance[noise] * 5.0,
            "relevance did not separate signal from noise: {:?}",
            fs.relevance
        );
    }
}

#[test]
fn global_selection_matches_float_trainer_up_to_cluster_representatives() {
    let (_db, _q, pt, apt) = setup();
    let cfg = FeatSelConfig::default();
    let float = select_features_global(&apt, &pt, &cfg);
    let order = hist_scan_order(&apt, &pt, None);
    let hist = select_features_hist_global(&apt, &pt, &order, &cfg, &NoSharedStats);

    // Clustering runs on the identical association matrix — the clusters
    // must agree exactly.
    assert_eq!(float.clusters, hist.clusters);
    // Which member *represents* a cluster of mutually-redundant
    // attributes is arbitrary (importance splits freely among perfectly
    // correlated features), so selections are compared at cluster level:
    // both trainers must select representatives of the same clusters.
    let cluster_of = |fs: &cajade_mining::FeatureSelection, f: usize| {
        fs.clusters
            .iter()
            .position(|c| c.contains(&f))
            .unwrap_or(usize::MAX)
    };
    let selected_clusters = |fs: &cajade_mining::FeatureSelection| {
        sorted(
            fs.num_fields
                .iter()
                .chain(&fs.cat_fields)
                .map(|&f| cluster_of(fs, f))
                .collect(),
        )
    };
    assert_eq!(
        selected_clusters(&float),
        selected_clusters(&hist),
        "float {float:?} vs hist {hist:?}"
    );
    // The correlated duplicate pair shares a cluster under both trainers.
    let signal = apt.field_index("prov_t_signal").unwrap();
    let dup = apt.field_index("prov_t_dup").unwrap();
    assert_eq!(cluster_of(&float, signal), cluster_of(&float, dup));
    assert_eq!(cluster_of(&hist, signal), cluster_of(&hist, dup));
}

/// Pathological shape for the restricted association matrix: more
/// mutually-correlated high-importance features than the measured-pair
/// budget, with duplicate *weak* features in the unmeasured tail. The
/// histogram path must fall back to measuring every pair rather than
/// co-selecting redundant tail features whose associations defaulted to
/// "never merge".
#[test]
fn restricted_assoc_never_coselects_redundant_tail_features() {
    let mut db = Database::new("wide");
    let mut builder = SchemaBuilder::new("t")
        .column_pk("id", DataType::Int, AttrKind::Categorical)
        .column("grp", DataType::Str, AttrKind::Categorical);
    for k in 0..17 {
        builder = builder.column(format!("s{k}"), DataType::Int, AttrKind::Numeric);
    }
    builder = builder
        .column("w", DataType::Int, AttrKind::Numeric)
        .column("w2", DataType::Int, AttrKind::Numeric);
    db.create_table(builder.build()).unwrap();
    let g1 = db.intern("g1");
    let g2 = db.intern("g2");
    for i in 0..240i64 {
        let grp = if i % 2 == 0 { g1 } else { g2 };
        // Strong signal: disjoint ranges per group; 17 exact multiples.
        let s = if i % 2 == 0 { i % 40 } else { 100 + i % 40 };
        // Weak signal: overlapping but shifted ranges; w2 duplicates w.
        let w = (i * 7) % 50 + if i % 2 == 0 { 0 } else { 12 };
        let mut row = vec![Value::Int(i), Value::Str(grp)];
        for k in 0..17i64 {
            row.push(Value::Int(s * (k + 1)));
        }
        row.push(Value::Int(w));
        row.push(Value::Int(w * 3));
        db.table_mut("t").unwrap().push_row(row).unwrap();
    }
    let q = parse_sql("SELECT count(*) AS c, grp FROM t GROUP BY grp").unwrap();
    let pt = ProvenanceTable::compute(&db, &q).unwrap();
    let apt = Apt::materialize(&db, &pt, &JoinGraph::pt_only()).unwrap();

    let cfg = FeatSelConfig::default(); // λ#sel-attr = 3 → 16 measured pairs
    let order = hist_scan_order(&apt, &pt, None);
    for fs in [
        select_features_hist(
            &apt,
            &pt,
            &order,
            &Question::TwoPoint { t1: 0, t2: 1 },
            &cfg,
            &NoSharedStats,
        ),
        select_features_hist_global(&apt, &pt, &order, &cfg, &NoSharedStats),
    ] {
        let selected: Vec<usize> = fs
            .num_fields
            .iter()
            .chain(&fs.cat_fields)
            .copied()
            .collect();
        let s_family: Vec<usize> = (0..17)
            .map(|k| apt.field_index(&format!("prov_t_s{k}")).unwrap())
            .collect();
        let w_family = [
            apt.field_index("prov_t_w").unwrap(),
            apt.field_index("prov_t_w2").unwrap(),
        ];
        let s_selected = selected.iter().filter(|f| s_family.contains(f)).count();
        let w_selected = selected.iter().filter(|f| w_family.contains(f)).count();
        assert!(
            s_selected <= 1 && w_selected <= 1,
            "redundant co-selection: {s_selected} signal copies and {w_selected} weak \
             duplicates selected ({fs:?})"
        );
    }
}

#[test]
fn mined_top_k_identical_under_either_trainer() {
    let (db, q, pt, apt) = setup();
    let question = Question::TwoPoint { t1: 0, t2: 1 };
    for (pat_samp, f1_samp) in [(1.0, 1.0), (1.0, 0.5)] {
        let mut params = MiningParams {
            lambda_pat_samp: pat_samp,
            lambda_f1_samp: f1_samp,
            ..Default::default()
        };
        params.featsel_engine = FeatSelEngine::Histogram;
        let hist = mine_apt(&apt, &pt, &question, &params);
        params.featsel_engine = FeatSelEngine::FloatMatrix;
        let float = mine_apt(&apt, &pt, &question, &params);
        let render = |out: &cajade_mining::MiningOutcome| -> Vec<String> {
            out.explanations
                .iter()
                .map(|e| {
                    format!(
                        "{}|{}|{:?}|{:?}",
                        e.pattern.render(&apt, db.pool()),
                        e.primary_group,
                        e.secondary_group,
                        (e.metrics.tp, e.metrics.a1, e.metrics.fp, e.metrics.a2),
                    )
                })
                .collect()
        };
        assert_eq!(
            render(&hist),
            render(&float),
            "trainer changed the mined top-k (λ_pat={pat_samp}, λ_F1={f1_samp})"
        );
        assert!(!hist.explanations.is_empty());
    }
    let _ = q;
}
