//! Seeded row samplers backing the λ_pat-samp and λ_F1-samp knobs.
//!
//! §5.4 fixes the LCA sample rate at 0.1 **capped at 1000 rows**;
//! [`sample_with_cap`] implements exactly that rule.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Bernoulli sample of `0..n` at `rate` (deterministic given `seed`).
/// Rates ≥ 1.0 return all rows; rates ≤ 0.0 return none.
pub fn bernoulli_sample(n: usize, rate: f64, seed: u64) -> Vec<usize> {
    if rate >= 1.0 {
        return (0..n).collect();
    }
    if rate <= 0.0 {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).filter(|_| rng.gen::<f64>() < rate).collect()
}

/// Fixed-size uniform sample without replacement (reservoir algorithm R).
/// Returns all rows (in order) when `k ≥ n`.
pub fn reservoir_sample(n: usize, k: usize, seed: u64) -> Vec<usize> {
    if k >= n {
        return (0..n).collect();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut reservoir: Vec<usize> = (0..k).collect();
    for i in k..n {
        let j = rng.gen_range(0..=i);
        if j < k {
            reservoir[j] = i;
        }
    }
    reservoir.sort_unstable();
    reservoir
}

/// The §5.4 sampling rule: Bernoulli at `rate`, but never more than `cap`
/// rows (re-subsampled uniformly when the Bernoulli draw exceeds the cap).
pub fn sample_with_cap(n: usize, rate: f64, cap: usize, seed: u64) -> Vec<usize> {
    let rows = bernoulli_sample(n, rate, seed);
    if rows.len() <= cap {
        return rows;
    }
    let keep = reservoir_sample(rows.len(), cap, seed.wrapping_add(1));
    keep.into_iter().map(|i| rows[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bernoulli_edge_rates() {
        assert_eq!(bernoulli_sample(10, 1.0, 1), (0..10).collect::<Vec<_>>());
        assert!(bernoulli_sample(10, 0.0, 1).is_empty());
        assert_eq!(bernoulli_sample(0, 0.5, 1), Vec::<usize>::new());
    }

    #[test]
    fn bernoulli_rate_is_roughly_respected() {
        let s = bernoulli_sample(10_000, 0.3, 42);
        let frac = s.len() as f64 / 10_000.0;
        assert!((frac - 0.3).abs() < 0.03, "got {frac}");
    }

    #[test]
    fn bernoulli_deterministic() {
        assert_eq!(bernoulli_sample(100, 0.5, 7), bernoulli_sample(100, 0.5, 7));
        assert_ne!(bernoulli_sample(100, 0.5, 7), bernoulli_sample(100, 0.5, 8));
    }

    #[test]
    fn reservoir_exact_size_and_membership() {
        let s = reservoir_sample(1000, 50, 3);
        assert_eq!(s.len(), 50);
        assert!(s.iter().all(|&i| i < 1000));
        let mut dedup = s.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), 50, "no duplicates");
    }

    #[test]
    fn reservoir_small_n() {
        assert_eq!(reservoir_sample(3, 10, 1), vec![0, 1, 2]);
    }

    #[test]
    fn cap_is_enforced() {
        let s = sample_with_cap(100_000, 0.5, 1000, 9);
        assert_eq!(s.len(), 1000);
        // Without hitting the cap, plain Bernoulli result passes through.
        let s2 = sample_with_cap(100, 0.5, 1000, 9);
        assert_eq!(s2, bernoulli_sample(100, 0.5, 9));
    }

    proptest! {
        /// Samples are sorted, in-bounds, and duplicate-free.
        #[test]
        fn prop_reservoir_invariants(n in 0usize..500, k in 0usize..100, seed in 0u64..50) {
            let s = reservoir_sample(n, k, seed);
            prop_assert_eq!(s.len(), k.min(n));
            prop_assert!(s.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(s.iter().all(|&i| i < n));
        }

        /// Cap rule never exceeds the cap.
        #[test]
        fn prop_cap(n in 0usize..2000, rate in 0.0f64..1.0, cap in 1usize..100, seed in 0u64..20) {
            let s = sample_with_cap(n, rate, cap, seed);
            prop_assert!(s.len() <= cap);
            prop_assert!(s.iter().all(|&i| i < n));
        }
    }
}
