//! # cajade-ml
//!
//! Machine-learning substrate for CaJaDE's attribute preprocessing
//! (paper §3.1):
//!
//! * [`forest`] — from-scratch random forests (CART trees, Gini impurity,
//!   bootstrap bagging, mean-decrease-impurity importances). The paper uses
//!   a random-forest classifier to rank attributes by how well they
//!   distinguish rows belonging to the provenance of the two user-question
//!   outputs, keeping only the top λ#sel-attr attributes. Two trainers
//!   exist: the float-matrix reference and a histogram trainer
//!   ([`HistForest`]) over pre-binned [`BinnedColumn`]s whose per-node
//!   split search reads class histograms (with parent − left = right
//!   subtraction) instead of re-scanning rows.
//! * [`cluster`] — attribute clustering by mutual association. The paper
//!   uses VARCLUS; per its own remark ("any technique that can cluster
//!   correlated attributes would be applicable") we use agglomerative
//!   average-linkage clustering over a mixed-type association matrix.
//! * [`correlation`] — the association measures feeding the clustering:
//!   Pearson |r| (numeric–numeric), Cramér's V (categorical–categorical),
//!   and the correlation ratio η (categorical–numeric).
//! * [`sampling`] — seeded Bernoulli and reservoir samplers implementing
//!   the λ_pat-samp / λ_F1-samp knobs (§3.2, §3.3) including the
//!   cap-at-1000-rows rule of §5.4.

#![warn(missing_docs)]

pub mod cluster;
pub mod correlation;
pub mod dataset;
pub mod forest;
pub mod sampling;
pub mod tree;

pub use cluster::cluster_attributes;
pub use correlation::{assoc_matrix, correlation_ratio, cramers_v, pearson};
pub use dataset::{BinKind, BinSpec, BinnedColumn, FeatureColumn};
pub use forest::{HistForest, RandomForest, RandomForestConfig};
pub use sampling::{bernoulli_sample, reservoir_sample, sample_with_cap};
pub use tree::{DecisionTree, HistTree, TreeConfig};
