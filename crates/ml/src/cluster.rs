//! Attribute clustering by mutual association (the paper's VARCLUS step).
//!
//! CaJaDE clusters highly-correlated attributes and keeps a single
//! representative per cluster, "to reduce the prevalence of … redundant
//! patterns" like `birth date` vs. `age` (§3.1). The paper uses SAS
//! VARCLUS but notes any correlation clustering applies; we use
//! average-linkage agglomerative clustering over the association matrix of
//! [`crate::correlation::assoc_matrix`].

/// Average-linkage agglomerative clustering.
///
/// `assoc` must be a symmetric matrix with values in `[0, 1]`; `threshold`
/// is the minimum average association for two clusters to merge. Returns
/// clusters as index sets, each sorted ascending, ordered by their smallest
/// member.
pub fn cluster_attributes(assoc: &[Vec<f64>], threshold: f64) -> Vec<Vec<usize>> {
    let p = assoc.len();
    let mut clusters: Vec<Vec<usize>> = (0..p).map(|i| vec![i]).collect();

    loop {
        // Find the pair of clusters with the highest average association.
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..clusters.len() {
            for j in (i + 1)..clusters.len() {
                let mut sum = 0.0;
                let mut cnt = 0.0;
                for &a in &clusters[i] {
                    for &b in &clusters[j] {
                        sum += assoc[a][b];
                        cnt += 1.0;
                    }
                }
                let avg = if cnt > 0.0 { sum / cnt } else { 0.0 };
                if best.is_none_or(|(_, _, b)| avg > b) {
                    best = Some((i, j, avg));
                }
            }
        }
        match best {
            Some((i, j, avg)) if avg >= threshold => {
                let merged = clusters.remove(j);
                clusters[i].extend(merged);
                clusters[i].sort_unstable();
            }
            _ => break,
        }
    }

    clusters.sort_by_key(|c| c[0]);
    clusters
}

/// Picks one representative per cluster: the member with the highest
/// `relevance` (ties broken by lowest index). This implements the paper's
/// "pick a single representative for each cluster", using the random-forest
/// relevance as the tiebreaker so the representative is the attribute most
/// useful for distinguishing the user question's outputs.
pub fn cluster_representatives(clusters: &[Vec<usize>], relevance: &[f64]) -> Vec<usize> {
    clusters
        .iter()
        .map(|c| {
            *c.iter()
                .max_by(|&&a, &&b| {
                    // `total_cmp` keeps the pick deterministic under NaN.
                    relevance[a].total_cmp(&relevance[b]).then(b.cmp(&a)) // prefer lower index on ties
                })
                .expect("clusters are non-empty")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Association matrix with two obvious blocks {0,1} and {2,3}, plus an
    /// isolated attribute 4.
    fn blocky() -> Vec<Vec<f64>> {
        let mut m = vec![vec![0.05; 5]; 5];
        for (i, row) in m.iter_mut().enumerate() {
            row[i] = 1.0;
        }
        m[0][1] = 0.95;
        m[1][0] = 0.95;
        m[2][3] = 0.9;
        m[3][2] = 0.9;
        m
    }

    #[test]
    fn finds_blocks() {
        let clusters = cluster_attributes(&blocky(), 0.8);
        assert_eq!(clusters, vec![vec![0, 1], vec![2, 3], vec![4]]);
    }

    #[test]
    fn threshold_one_keeps_singletons() {
        let clusters = cluster_attributes(&blocky(), 1.01);
        assert_eq!(clusters.len(), 5);
    }

    #[test]
    fn threshold_zero_merges_everything() {
        let clusters = cluster_attributes(&blocky(), 0.0);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0], vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn representatives_prefer_relevance() {
        let clusters = vec![vec![0, 1], vec![2, 3], vec![4]];
        let relevance = [0.1, 0.9, 0.5, 0.5, 0.0];
        let reps = cluster_representatives(&clusters, &relevance);
        assert_eq!(reps, vec![1, 2, 4]); // 1 beats 0; tie 2-3 → lower index; 4 alone
    }

    #[test]
    fn empty_input() {
        let clusters = cluster_attributes(&[], 0.5);
        assert!(clusters.is_empty());
        assert!(cluster_representatives(&clusters, &[]).is_empty());
    }
}
