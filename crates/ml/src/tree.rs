//! CART decision trees for binary classification with Gini impurity.
//!
//! Two trainers share the split semantics (numeric `x ≤ t`, categorical
//! `x = v`, missing always right) and the per-feature impurity-decrease
//! bookkeeping that feeds the forest's mean-decrease-impurity
//! importances:
//!
//! * [`DecisionTree`] — the float-matrix reference: per node it re-scans
//!   and re-sorts the node's rows for every candidate threshold;
//! * [`HistTree`] — the histogram trainer on pre-binned
//!   [`BinnedColumn`]s: per node it accumulates one class histogram per
//!   feature and reads every candidate split off the histogram, deriving
//!   the larger child's histograms by parent − left = right subtraction.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;

use crate::dataset::{BinKind, BinnedColumn, FeatureColumn};

/// Tree hyper-parameters.
#[derive(Debug, Clone)]
pub struct TreeConfig {
    /// Maximum depth.
    pub max_depth: usize,
    /// Do not split nodes smaller than this.
    pub min_samples_split: usize,
    /// Number of candidate features per node (`None` = all).
    pub features_per_node: Option<usize>,
    /// Max candidate thresholds per numeric feature per node.
    pub max_thresholds: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self {
            max_depth: 8,
            min_samples_split: 4,
            features_per_node: None,
            max_thresholds: 16,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        /// Probability of the positive class.
        prob: f64,
    },
    SplitNum {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
    SplitCat {
        feature: usize,
        value: u32,
        left: usize,
        right: usize,
    },
}

/// A fitted decision tree.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    /// Per-feature accumulated (weighted) impurity decrease.
    pub importances: Vec<f64>,
}

fn gini(pos: f64, total: f64) -> f64 {
    if total <= 0.0 {
        return 0.0;
    }
    let p = pos / total;
    2.0 * p * (1.0 - p)
}

impl DecisionTree {
    /// Fits a tree on the rows listed in `rows`.
    pub fn fit(
        features: &[FeatureColumn],
        labels: &[bool],
        rows: &[usize],
        config: &TreeConfig,
        rng: &mut StdRng,
    ) -> Self {
        let mut tree = DecisionTree {
            nodes: Vec::new(),
            importances: vec![0.0; features.len()],
        };
        let n_total = rows.len().max(1) as f64;
        tree.build(features, labels, rows.to_vec(), config, rng, 0, n_total);
        tree
    }

    fn leaf(&mut self, labels: &[bool], rows: &[usize]) -> usize {
        let pos = rows.iter().filter(|&&r| labels[r]).count() as f64;
        let prob = if rows.is_empty() {
            0.5
        } else {
            pos / rows.len() as f64
        };
        self.nodes.push(Node::Leaf { prob });
        self.nodes.len() - 1
    }

    #[allow(clippy::too_many_arguments)]
    fn build(
        &mut self,
        features: &[FeatureColumn],
        labels: &[bool],
        rows: Vec<usize>,
        config: &TreeConfig,
        rng: &mut StdRng,
        depth: usize,
        n_total: f64,
    ) -> usize {
        let pos = rows.iter().filter(|&&r| labels[r]).count() as f64;
        let total = rows.len() as f64;
        let node_gini = gini(pos, total);

        if depth >= config.max_depth || rows.len() < config.min_samples_split || node_gini == 0.0 {
            return self.leaf(labels, &rows);
        }

        // Candidate feature subset.
        let mut feat_idx: Vec<usize> = (0..features.len()).collect();
        if let Some(k) = config.features_per_node {
            feat_idx.shuffle(rng);
            feat_idx.truncate(k.max(1));
        }

        let mut best: Option<(f64, Split)> = None;
        for &f in &feat_idx {
            if let Some((gain, split)) =
                best_split_for_feature(&features[f], labels, &rows, f, config, rng)
            {
                if best.as_ref().is_none_or(|(bg, _)| gain > *bg) {
                    best = Some((gain, split));
                }
            }
        }

        let Some((gain, split)) = best else {
            return self.leaf(labels, &rows);
        };
        if gain <= 1e-12 {
            return self.leaf(labels, &rows);
        }

        // Partition rows.
        let (left_rows, right_rows): (Vec<usize>, Vec<usize>) = match split {
            Split::Num { feature, threshold } => {
                rows.iter().partition(|&&r| match &features[feature] {
                    FeatureColumn::Numeric(v) => !v[r].is_nan() && v[r] <= threshold,
                    _ => unreachable!(),
                })
            }
            Split::Cat { feature, value } => {
                rows.iter().partition(|&&r| match &features[feature] {
                    FeatureColumn::Categorical(v) => v[r] == value,
                    _ => unreachable!(),
                })
            }
        };
        if left_rows.is_empty() || right_rows.is_empty() {
            return self.leaf(labels, &rows);
        }

        // Weighted impurity decrease contributes to the feature's importance.
        let f = match split {
            Split::Num { feature, .. } | Split::Cat { feature, .. } => feature,
        };
        self.importances[f] += gain * (total / n_total);

        let placeholder = self.nodes.len();
        self.nodes.push(Node::Leaf { prob: 0.5 }); // replaced below
        let left = self.build(features, labels, left_rows, config, rng, depth + 1, n_total);
        let right = self.build(
            features,
            labels,
            right_rows,
            config,
            rng,
            depth + 1,
            n_total,
        );
        self.nodes[placeholder] = match split {
            Split::Num { feature, threshold } => Node::SplitNum {
                feature,
                threshold,
                left,
                right,
            },
            Split::Cat { feature, value } => Node::SplitCat {
                feature,
                value,
                left,
                right,
            },
        };
        placeholder
    }

    /// Predicted probability of the positive class for row `row`.
    pub fn predict_proba(&self, features: &[FeatureColumn], row: usize) -> f64 {
        // Root is node created first at each recursion level; by
        // construction the root of the whole tree is node 0.
        let mut idx = 0;
        loop {
            match &self.nodes[idx] {
                Node::Leaf { prob } => return *prob,
                Node::SplitNum {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let go_left = match &features[*feature] {
                        FeatureColumn::Numeric(v) => !v[row].is_nan() && v[row] <= *threshold,
                        _ => false,
                    };
                    idx = if go_left { *left } else { *right };
                }
                Node::SplitCat {
                    feature,
                    value,
                    left,
                    right,
                } => {
                    let go_left = match &features[*feature] {
                        FeatureColumn::Categorical(v) => v[row] == *value,
                        _ => false,
                    };
                    idx = if go_left { *left } else { *right };
                }
            }
        }
    }

    /// Number of nodes (for tests).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }
}

#[derive(Debug, Clone, Copy)]
enum Split {
    Num { feature: usize, threshold: f64 },
    Cat { feature: usize, value: u32 },
}

fn best_split_for_feature(
    col: &FeatureColumn,
    labels: &[bool],
    rows: &[usize],
    feature: usize,
    config: &TreeConfig,
    rng: &mut StdRng,
) -> Option<(f64, Split)> {
    let total = rows.len() as f64;
    let pos_total = rows.iter().filter(|&&r| labels[r]).count() as f64;
    let parent = gini(pos_total, total);

    match col {
        FeatureColumn::Numeric(v) => {
            // Candidate thresholds: up to max_thresholds values sampled from
            // the node's distinct values.
            let mut vals: Vec<f64> = rows.iter().map(|&r| v[r]).filter(|x| !x.is_nan()).collect();
            if vals.is_empty() {
                return None;
            }
            vals.sort_by(f64::total_cmp);
            vals.dedup();
            if vals.len() > config.max_thresholds {
                // Evenly spaced quantile thresholds.
                let step = vals.len() as f64 / config.max_thresholds as f64;
                vals = (0..config.max_thresholds)
                    .map(|i| vals[(i as f64 * step) as usize])
                    .collect();
            }
            let mut best: Option<(f64, Split)> = None;
            for &t in &vals {
                let (mut lp, mut ln, mut rp, mut rn) = (0.0, 0.0, 0.0, 0.0);
                for &r in rows {
                    let x = v[r];
                    let left = !x.is_nan() && x <= t;
                    let y = labels[r];
                    match (left, y) {
                        (true, true) => lp += 1.0,
                        (true, false) => ln += 1.0,
                        (false, true) => rp += 1.0,
                        (false, false) => rn += 1.0,
                    }
                }
                let lt = lp + ln;
                let rt = rp + rn;
                if lt == 0.0 || rt == 0.0 {
                    continue;
                }
                let child = (lt / total) * gini(lp, lt) + (rt / total) * gini(rp, rt);
                let gain = parent - child;
                if best.as_ref().is_none_or(|(bg, _)| gain > *bg) {
                    best = Some((
                        gain,
                        Split::Num {
                            feature,
                            threshold: t,
                        },
                    ));
                }
            }
            best
        }
        FeatureColumn::Categorical(v) => {
            // Candidate values: distinct codes in the node (capped, sampled).
            let mut vals: Vec<u32> = rows
                .iter()
                .map(|&r| v[r])
                .filter(|&x| x != u32::MAX)
                .collect();
            vals.sort_unstable();
            vals.dedup();
            if vals.len() > config.max_thresholds {
                vals.shuffle(rng);
                vals.truncate(config.max_thresholds);
            }
            let mut best: Option<(f64, Split)> = None;
            for &val in &vals {
                let (mut lp, mut ln, mut rp, mut rn) = (0.0, 0.0, 0.0, 0.0);
                for &r in rows {
                    let left = v[r] == val;
                    let y = labels[r];
                    match (left, y) {
                        (true, true) => lp += 1.0,
                        (true, false) => ln += 1.0,
                        (false, true) => rp += 1.0,
                        (false, false) => rn += 1.0,
                    }
                }
                let lt = lp + ln;
                let rt = rp + rn;
                if lt == 0.0 || rt == 0.0 {
                    continue;
                }
                let child = (lt / total) * gini(lp, lt) + (rt / total) * gini(rp, rt);
                let gain = parent - child;
                if best.as_ref().is_none_or(|(bg, _)| gain > *bg) {
                    best = Some((
                        gain,
                        Split::Cat {
                            feature,
                            value: val,
                        },
                    ));
                }
            }
            best
        }
    }
}

// ---------------------------------------------------------------------
// Histogram-based CART on pre-binned columns.
// ---------------------------------------------------------------------

/// Per-feature class histograms of one node: `hists[f][bin] = [neg, pos]`
/// counts, `num_bins + 1` wide (the trailing slot is the missing bin).
type NodeHists = Vec<Vec<[u32; 2]>>;

fn build_hists(cols: &[BinnedColumn], labels: &[bool], rows: &[u32]) -> NodeHists {
    cols.iter()
        .map(|col| {
            let mut h = vec![[0u32; 2]; col.num_bins() as usize + 1];
            for &r in rows {
                h[col.code(r as usize) as usize][labels[r as usize] as usize] += 1;
            }
            h
        })
        .collect()
}

/// `parent − small = large`: the classic histogram-subtraction trick —
/// only the smaller child's histograms are rebuilt from its rows, the
/// larger child's are derived in `O(features × bins)`.
fn subtract_hists(parent: &NodeHists, small: &NodeHists) -> NodeHists {
    parent
        .iter()
        .zip(small)
        .map(|(p, s)| {
            p.iter()
                .zip(s)
                .map(|(pc, sc)| [pc[0] - sc[0], pc[1] - sc[1]])
                .collect()
        })
        .collect()
}

#[derive(Debug, Clone)]
enum HNode {
    Leaf {
        prob: f64,
    },
    /// Go left iff `code ≤ bin` (missing bin is always greater).
    SplitNum {
        feature: usize,
        bin: u16,
        left: usize,
        right: usize,
    },
    /// Go left iff `code == code_eq`.
    SplitCat {
        feature: usize,
        code_eq: u16,
        left: usize,
        right: usize,
    },
}

/// A CART tree trained on [`BinnedColumn`]s with per-node class
/// histograms instead of row re-scans.
///
/// Split search walks each candidate feature's bin histogram once
/// (`O(bins)` per feature) rather than re-scanning and re-sorting the
/// node's rows per candidate threshold; child histograms are derived by
/// the parent − left = right subtraction, so only the smaller child pays
/// a build pass. On bins that losslessly cover the value domain the
/// chosen splits — and therefore the mean-decrease-impurity importances —
/// are identical to [`DecisionTree`]'s (see the equivalence tests).
#[derive(Debug, Clone)]
pub struct HistTree {
    nodes: Vec<HNode>,
    /// Per-feature accumulated (weighted) impurity decrease.
    pub importances: Vec<f64>,
}

impl HistTree {
    /// Fits a tree on the rows listed in `rows`.
    pub fn fit(
        cols: &[BinnedColumn],
        labels: &[bool],
        rows: &[u32],
        config: &TreeConfig,
        rng: &mut StdRng,
    ) -> Self {
        let mut tree = HistTree {
            nodes: Vec::new(),
            importances: vec![0.0; cols.len()],
        };
        let n_total = rows.len().max(1) as f64;
        let hists = build_hists(cols, labels, rows);
        tree.build(cols, labels, rows.to_vec(), hists, config, rng, 0, n_total);
        tree
    }

    fn leaf(&mut self, labels: &[bool], rows: &[u32]) -> usize {
        let pos = rows.iter().filter(|&&r| labels[r as usize]).count() as f64;
        let prob = if rows.is_empty() {
            0.5
        } else {
            pos / rows.len() as f64
        };
        self.nodes.push(HNode::Leaf { prob });
        self.nodes.len() - 1
    }

    #[allow(clippy::too_many_arguments)]
    fn build(
        &mut self,
        cols: &[BinnedColumn],
        labels: &[bool],
        rows: Vec<u32>,
        hists: NodeHists,
        config: &TreeConfig,
        rng: &mut StdRng,
        depth: usize,
        n_total: f64,
    ) -> usize {
        let pos = rows.iter().filter(|&&r| labels[r as usize]).count() as f64;
        let total = rows.len() as f64;
        let node_gini = gini(pos, total);

        if depth >= config.max_depth || rows.len() < config.min_samples_split || node_gini == 0.0 {
            return self.leaf(labels, &rows);
        }

        // Candidate feature subset (same policy as the float trainer).
        let mut feat_idx: Vec<usize> = (0..cols.len()).collect();
        if let Some(k) = config.features_per_node {
            feat_idx.shuffle(rng);
            feat_idx.truncate(k.max(1));
        }

        let mut best: Option<(f64, HSplit)> = None;
        for &f in &feat_idx {
            if let Some((gain, split)) = best_hist_split(&cols[f], &hists[f], f, node_gini, total) {
                if best.as_ref().is_none_or(|(bg, _)| gain > *bg) {
                    best = Some((gain, split));
                }
            }
        }

        let Some((gain, split)) = best else {
            return self.leaf(labels, &rows);
        };
        if gain <= 1e-12 {
            return self.leaf(labels, &rows);
        }

        let (left_rows, right_rows): (Vec<u32>, Vec<u32>) = match split {
            HSplit::Num { feature, bin } => rows
                .iter()
                .partition(|&&r| cols[feature].code(r as usize) <= bin),
            HSplit::Cat { feature, code } => rows
                .iter()
                .partition(|&&r| cols[feature].code(r as usize) == code),
        };
        if left_rows.is_empty() || right_rows.is_empty() {
            return self.leaf(labels, &rows);
        }

        let f = match split {
            HSplit::Num { feature, .. } | HSplit::Cat { feature, .. } => feature,
        };
        self.importances[f] += gain * (total / n_total);

        // Histogram subtraction: rebuild only the smaller child.
        let (small_rows, small_is_left) = if left_rows.len() <= right_rows.len() {
            (&left_rows, true)
        } else {
            (&right_rows, false)
        };
        let small = build_hists(cols, labels, small_rows);
        let large = subtract_hists(&hists, &small);
        drop(hists);
        let (left_h, right_h) = if small_is_left {
            (small, large)
        } else {
            (large, small)
        };

        let placeholder = self.nodes.len();
        self.nodes.push(HNode::Leaf { prob: 0.5 }); // replaced below
        let left = self.build(
            cols,
            labels,
            left_rows,
            left_h,
            config,
            rng,
            depth + 1,
            n_total,
        );
        let right = self.build(
            cols,
            labels,
            right_rows,
            right_h,
            config,
            rng,
            depth + 1,
            n_total,
        );
        self.nodes[placeholder] = match split {
            HSplit::Num { feature, bin } => HNode::SplitNum {
                feature,
                bin,
                left,
                right,
            },
            HSplit::Cat { feature, code } => HNode::SplitCat {
                feature,
                code_eq: code,
                left,
                right,
            },
        };
        placeholder
    }

    /// Predicted probability of the positive class for row `row`.
    pub fn predict_proba(&self, cols: &[BinnedColumn], row: usize) -> f64 {
        let mut idx = 0;
        loop {
            match &self.nodes[idx] {
                HNode::Leaf { prob } => return *prob,
                HNode::SplitNum {
                    feature,
                    bin,
                    left,
                    right,
                } => {
                    idx = if cols[*feature].code(row) <= *bin {
                        *left
                    } else {
                        *right
                    };
                }
                HNode::SplitCat {
                    feature,
                    code_eq,
                    left,
                    right,
                } => {
                    idx = if cols[*feature].code(row) == *code_eq {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Number of nodes (for tests).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }
}

#[derive(Debug, Clone, Copy)]
enum HSplit {
    Num { feature: usize, bin: u16 },
    Cat { feature: usize, code: u16 },
}

/// Best split of one feature, read off its node histogram: numeric bins
/// are scanned as a prefix sum (split candidates are the bin upper
/// edges), categorical bins as one-vs-rest equality splits. Missing rows
/// (trailing histogram slot) always stay on the right side, matching the
/// float trainer's NaN routing.
fn best_hist_split(
    col: &BinnedColumn,
    hist: &[[u32; 2]],
    feature: usize,
    parent_gini: f64,
    total: f64,
) -> Option<(f64, HSplit)> {
    let pos_total: f64 = hist.iter().map(|c| c[1] as f64).sum();
    let mut best: Option<(f64, HSplit)> = None;
    let mut consider = |gain: f64, split: HSplit| {
        if best.as_ref().is_none_or(|(bg, _)| gain > *bg) {
            best = Some((gain, split));
        }
    };
    match col.kind() {
        BinKind::Numeric { thresholds } => {
            let (mut lp, mut ln) = (0.0f64, 0.0f64);
            for (b, cell) in hist.iter().take(thresholds.len()).enumerate() {
                lp += cell[1] as f64;
                ln += cell[0] as f64;
                let lt = lp + ln;
                let rt = total - lt;
                if lt == 0.0 || rt == 0.0 {
                    continue;
                }
                let rp = pos_total - lp;
                let child = (lt / total) * gini(lp, lt) + (rt / total) * gini(rp, rt);
                consider(
                    parent_gini - child,
                    HSplit::Num {
                        feature,
                        bin: b as u16,
                    },
                );
            }
        }
        BinKind::Categorical { split_values } => {
            for v in 0..*split_values {
                let [ln, lp] = hist[v as usize];
                let (lp, ln) = (lp as f64, ln as f64);
                let lt = lp + ln;
                let rt = total - lt;
                if lt == 0.0 || rt == 0.0 {
                    continue;
                }
                let rp = pos_total - lp;
                let child = (lt / total) * gini(lp, lt) + (rt / total) * gini(rp, rt);
                consider(parent_gini - child, HSplit::Cat { feature, code: v });
            }
        }
    }
    best
}

/// Deterministic rng helper for tests.
#[cfg(test)]
pub(crate) fn test_rng(seed: u64) -> StdRng {
    use rand::SeedableRng;
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gini_extremes() {
        assert_eq!(gini(0.0, 10.0), 0.0);
        assert_eq!(gini(10.0, 10.0), 0.0);
        assert!((gini(5.0, 10.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn learns_numeric_threshold() {
        // y = x > 5
        let xs: Vec<f64> = (0..100).map(|i| i as f64 / 10.0).collect();
        let labels: Vec<bool> = xs.iter().map(|&x| x > 5.0).collect();
        let features = vec![FeatureColumn::Numeric(xs)];
        let rows: Vec<usize> = (0..100).collect();
        let mut rng = test_rng(7);
        let tree = DecisionTree::fit(&features, &labels, &rows, &TreeConfig::default(), &mut rng);
        let correct = rows
            .iter()
            .filter(|&&r| (tree.predict_proba(&features, r) > 0.5) == labels[r])
            .count();
        assert!(correct >= 95, "got {correct}/100 correct");
        assert!(tree.importances[0] > 0.0);
    }

    #[test]
    fn learns_categorical_split() {
        // y = (cat == 3)
        let cats: Vec<u32> = (0..200).map(|i| (i % 7) as u32).collect();
        let labels: Vec<bool> = cats.iter().map(|&c| c == 3).collect();
        let features = vec![FeatureColumn::Categorical(cats)];
        let rows: Vec<usize> = (0..200).collect();
        let mut rng = test_rng(3);
        let tree = DecisionTree::fit(&features, &labels, &rows, &TreeConfig::default(), &mut rng);
        let correct = rows
            .iter()
            .filter(|&&r| (tree.predict_proba(&features, r) > 0.5) == labels[r])
            .count();
        assert_eq!(correct, 200);
    }

    #[test]
    fn irrelevant_feature_gets_less_importance() {
        let xs: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let noise: Vec<u32> = (0..200).map(|i| (i * 31 % 5) as u32).collect();
        let labels: Vec<bool> = xs.iter().map(|&x| x > 100.0).collect();
        let features = vec![
            FeatureColumn::Numeric(xs),
            FeatureColumn::Categorical(noise),
        ];
        let rows: Vec<usize> = (0..200).collect();
        let mut rng = test_rng(11);
        let tree = DecisionTree::fit(&features, &labels, &rows, &TreeConfig::default(), &mut rng);
        assert!(tree.importances[0] > tree.importances[1]);
    }

    #[test]
    fn pure_node_stays_leaf() {
        let features = vec![FeatureColumn::Numeric(vec![1.0, 2.0, 3.0])];
        let labels = vec![true, true, true];
        let mut rng = test_rng(1);
        let tree = DecisionTree::fit(
            &features,
            &labels,
            &[0, 1, 2],
            &TreeConfig::default(),
            &mut rng,
        );
        assert_eq!(tree.num_nodes(), 1);
        assert_eq!(tree.predict_proba(&features, 0), 1.0);
    }

    #[test]
    fn missing_values_route_right() {
        let features = vec![FeatureColumn::Numeric(vec![
            1.0,
            2.0,
            f64::NAN,
            10.0,
            11.0,
            f64::NAN,
        ])];
        let labels = vec![false, false, true, true, true, true];
        let rows: Vec<usize> = (0..6).collect();
        let mut rng = test_rng(5);
        let cfg = TreeConfig {
            min_samples_split: 2,
            ..TreeConfig::default()
        };
        let tree = DecisionTree::fit(&features, &labels, &rows, &cfg, &mut rng);
        // NaN rows predicted with the right-branch majority (true).
        assert!(tree.predict_proba(&features, 2) > 0.5);
    }

    // ---- histogram tree ------------------------------------------------

    #[test]
    fn hist_tree_learns_numeric_threshold() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64 / 10.0).collect();
        let labels: Vec<bool> = xs.iter().map(|&x| x > 5.0).collect();
        let cols = vec![BinnedColumn::from_f64(&xs, 32)];
        let rows: Vec<u32> = (0..100).collect();
        let mut rng = test_rng(7);
        let tree = HistTree::fit(&cols, &labels, &rows, &TreeConfig::default(), &mut rng);
        let correct = rows
            .iter()
            .filter(|&&r| (tree.predict_proba(&cols, r as usize) > 0.5) == labels[r as usize])
            .count();
        assert!(correct >= 95, "got {correct}/100 correct");
        assert!(tree.importances[0] > 0.0);
    }

    #[test]
    fn hist_tree_learns_categorical_split() {
        let keys: Vec<Option<u64>> = (0..200).map(|i| Some((i % 7) as u64)).collect();
        let labels: Vec<bool> = keys.iter().map(|k| *k == Some(3)).collect();
        let cols = vec![BinnedColumn::from_keys(keys, 32)];
        let rows: Vec<u32> = (0..200).collect();
        let mut rng = test_rng(3);
        let tree = HistTree::fit(&cols, &labels, &rows, &TreeConfig::default(), &mut rng);
        let correct = rows
            .iter()
            .filter(|&&r| (tree.predict_proba(&cols, r as usize) > 0.5) == labels[r as usize])
            .count();
        assert_eq!(correct, 200);
    }

    #[test]
    fn hist_tree_missing_routes_right() {
        let vals = vec![1.0, 2.0, f64::NAN, 10.0, 11.0, f64::NAN];
        let labels = vec![false, false, true, true, true, true];
        let cols = vec![BinnedColumn::from_f64(&vals, 16)];
        let rows: Vec<u32> = (0..6).collect();
        let mut rng = test_rng(5);
        let cfg = TreeConfig {
            min_samples_split: 2,
            ..TreeConfig::default()
        };
        let tree = HistTree::fit(&cols, &labels, &rows, &cfg, &mut rng);
        assert!(tree.predict_proba(&cols, 2) > 0.5);
    }

    #[test]
    fn hist_tree_pure_node_stays_leaf() {
        let cols = vec![BinnedColumn::from_f64(&[1.0, 2.0, 3.0], 16)];
        let labels = vec![true, true, true];
        let mut rng = test_rng(1);
        let tree = HistTree::fit(&cols, &labels, &[0, 1, 2], &TreeConfig::default(), &mut rng);
        assert_eq!(tree.num_nodes(), 1);
        assert_eq!(tree.predict_proba(&cols, 0), 1.0);
    }

    /// On a domain the binning covers losslessly (distinct values within
    /// both the bin budget and the float trainer's per-node threshold
    /// cap), the histogram tree considers exactly the float tree's
    /// candidate splits in the same order — the importances must be
    /// bit-identical.
    #[test]
    fn hist_tree_importances_match_float_tree_on_lossless_binning() {
        let n = 300usize;
        let xs: Vec<f64> = (0..n).map(|i| ((i * 7) % 11) as f64).collect();
        let cats: Vec<u32> = (0..n).map(|i| (i % 6) as u32).collect();
        let labels: Vec<bool> = (0..n).map(|i| (xs[i] > 4.0) ^ (cats[i] == 2)).collect();

        let float_features = vec![
            FeatureColumn::Numeric(xs.clone()),
            FeatureColumn::Categorical(cats.clone()),
        ];
        // Dense codes for `cats` are already first-appearance ordered
        // (0..6), matching `from_keys`' assignment.
        let cols = vec![
            BinnedColumn::from_f64(&xs, 16),
            BinnedColumn::from_keys(cats.iter().map(|&c| Some(c as u64)), 16),
        ];
        let rows_f: Vec<usize> = (0..n).collect();
        let rows_h: Vec<u32> = (0..n as u32).collect();
        let cfg = TreeConfig::default(); // all features per node → rng unused
        let float_tree =
            DecisionTree::fit(&float_features, &labels, &rows_f, &cfg, &mut test_rng(9));
        let hist_tree = HistTree::fit(&cols, &labels, &rows_h, &cfg, &mut test_rng(9));
        assert_eq!(float_tree.importances, hist_tree.importances);
        assert_eq!(float_tree.num_nodes(), hist_tree.num_nodes());
    }
}
