//! Feature-matrix representation decoupled from the storage layer: the
//! mining crate converts APT columns into [`FeatureColumn`]s before calling
//! the forest / clustering code, keeping this crate dependency-free.

/// One feature (attribute) over all rows.
#[derive(Debug, Clone)]
pub enum FeatureColumn {
    /// Numeric feature; `NaN` marks a missing value.
    Numeric(Vec<f64>),
    /// Categorical feature as dense codes; `u32::MAX` marks missing.
    Categorical(Vec<u32>),
}

/// Sentinel for a missing categorical value.
pub const MISSING_CAT: u32 = u32::MAX;

impl FeatureColumn {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            FeatureColumn::Numeric(v) => v.len(),
            FeatureColumn::Categorical(v) => v.len(),
        }
    }

    /// True iff the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True for the numeric variant.
    pub fn is_numeric(&self) -> bool {
        matches!(self, FeatureColumn::Numeric(_))
    }

    /// Missing-value check for row `i`.
    pub fn is_missing(&self, i: usize) -> bool {
        match self {
            FeatureColumn::Numeric(v) => v[i].is_nan(),
            FeatureColumn::Categorical(v) => v[i] == MISSING_CAT,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_and_kind() {
        let n = FeatureColumn::Numeric(vec![1.0, f64::NAN]);
        let c = FeatureColumn::Categorical(vec![0, MISSING_CAT, 2]);
        assert_eq!(n.len(), 2);
        assert_eq!(c.len(), 3);
        assert!(n.is_numeric());
        assert!(!c.is_numeric());
    }

    #[test]
    fn missing_detection() {
        let n = FeatureColumn::Numeric(vec![1.0, f64::NAN]);
        let c = FeatureColumn::Categorical(vec![0, MISSING_CAT]);
        assert!(!n.is_missing(0));
        assert!(n.is_missing(1));
        assert!(!c.is_missing(0));
        assert!(c.is_missing(1));
    }
}
