//! Feature-matrix representations decoupled from the storage layer.
//!
//! Two representations coexist:
//!
//! * [`FeatureColumn`] — decoded values (`f64` / dense `u32` codes), the
//!   input of the float-matrix [`DecisionTree`](crate::tree::DecisionTree)
//!   trainer and of the association measures in [`crate::correlation`];
//! * [`BinnedColumn`] — a *pre-binned* column: every value is a small
//!   bin code (`u16`), numeric bins carry their quantile upper edges, and
//!   missing values occupy a dedicated trailing bin. This is what the
//!   histogram trainer ([`crate::tree::HistTree`]) consumes: split search
//!   walks bin histograms instead of re-scanning and re-sorting node rows,
//!   and the codes can be gathered straight from dictionary/typed-array
//!   encoded storage without materializing per-row floats.

/// One feature (attribute) over all rows.
#[derive(Debug, Clone)]
pub enum FeatureColumn {
    /// Numeric feature; `NaN` marks a missing value.
    Numeric(Vec<f64>),
    /// Categorical feature as dense codes; `u32::MAX` marks missing.
    Categorical(Vec<u32>),
}

/// Sentinel for a missing categorical value.
pub const MISSING_CAT: u32 = u32::MAX;

/// What a [`BinnedColumn`]'s bins mean.
#[derive(Debug, Clone)]
pub enum BinKind {
    /// Ordered bins from quantile binning. `thresholds[b]` is the largest
    /// value of bin `b`; a split candidate `≤ thresholds[b]` sends bins
    /// `0..=b` left. Values above the last threshold live in an implicit
    /// top bin (`thresholds.len()`) that can only ever go right.
    Numeric {
        /// Quantile upper edges, strictly increasing.
        thresholds: Vec<f64>,
    },
    /// Unordered bins (one per retained category). Bins `0..split_values`
    /// are equality-split candidates (`code == v` goes left); when the
    /// column's cardinality exceeded the bin budget, bin `split_values`
    /// aggregates the rare remainder and is never a split candidate —
    /// mirroring the float trainer's candidate-value sampling.
    Categorical {
        /// Number of equality-splittable bins.
        split_values: u16,
    },
}

/// A pre-binned feature column for histogram tree training.
///
/// Codes are `u16`; valid value bins are `0..num_bins` and the dedicated
/// missing bin is `num_bins` itself (so histograms are simply
/// `num_bins + 1` wide and accumulation is branch-free). Missing values
/// always route to the right child, matching the float trainer.
#[derive(Debug, Clone)]
pub struct BinnedColumn {
    codes: Vec<u16>,
    num_bins: u16,
    kind: BinKind,
}

impl BinnedColumn {
    /// Quantile-bins a numeric column (`NaN` = missing) into at most
    /// `max_bins` value bins. Thresholds are drawn from the distinct
    /// values the same way the float trainer samples split candidates:
    /// all of them when few, evenly spaced quantiles otherwise. Columns
    /// much longer than the bin budget estimate their quantiles from a
    /// strided sample (≥ 16 values per bin), so the sort — the only
    /// super-linear step — stays bounded; every row is still coded.
    pub fn from_f64(values: &[f64], max_bins: usize) -> BinnedColumn {
        let max_bins = max_bins.clamp(1, u16::MAX as usize - 2);
        let sample_cap = 16 * max_bins;
        let step = if values.len() > sample_cap {
            values.len().div_ceil(sample_cap)
        } else {
            1
        };
        let mut vals: Vec<f64> = values
            .iter()
            .step_by(step)
            .copied()
            .filter(|x| !x.is_nan())
            .collect();
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        vals.dedup();
        let thresholds: Vec<f64> = if vals.len() <= max_bins {
            vals
        } else {
            let step = vals.len() as f64 / max_bins as f64;
            let mut t: Vec<f64> = (0..max_bins)
                .map(|i| vals[(i as f64 * step) as usize])
                .collect();
            t.dedup();
            t
        };
        // Value bins: one per threshold plus the implicit top bin.
        let num_bins = (thresholds.len() + 1) as u16;
        let codes = values
            .iter()
            .map(|&v| {
                if v.is_nan() {
                    num_bins // missing bin
                } else {
                    thresholds.partition_point(|&t| t < v) as u16
                }
            })
            .collect();
        BinnedColumn {
            codes,
            num_bins,
            kind: BinKind::Numeric { thresholds },
        }
    }

    /// Builds a categorical binned column from arbitrary per-row keys
    /// (`None` = missing). Dense codes are assigned in first-appearance
    /// order; when the cardinality exceeds `max_bins`, the `max_bins`
    /// most frequent categories (ties: earliest appearance) keep their
    /// own bins and the rest collapse into a non-splittable "other" bin.
    pub fn from_keys<I: IntoIterator<Item = Option<u64>>>(
        keys: I,
        max_bins: usize,
    ) -> BinnedColumn {
        use std::collections::HashMap;
        let max_bins = max_bins.clamp(1, u16::MAX as usize - 2);
        let mut dense: HashMap<u64, u32> = HashMap::new();
        let mut raw: Vec<u32> = Vec::new();
        const MISSING_RAW: u32 = u32::MAX;
        for key in keys {
            match key {
                None => raw.push(MISSING_RAW),
                Some(k) => {
                    let next = dense.len() as u32;
                    raw.push(*dense.entry(k).or_insert(next));
                }
            }
        }
        let distinct = dense.len();
        if distinct <= max_bins {
            let num_bins = distinct as u16;
            let codes = raw
                .iter()
                .map(|&c| if c == MISSING_RAW { num_bins } else { c as u16 })
                .collect();
            return BinnedColumn {
                codes,
                num_bins,
                kind: BinKind::Categorical {
                    split_values: num_bins,
                },
            };
        }
        // Cap: keep the most frequent categories, collapse the tail.
        let mut counts = vec![0u32; distinct];
        for &c in &raw {
            if c != MISSING_RAW {
                counts[c as usize] += 1;
            }
        }
        let mut order: Vec<u32> = (0..distinct as u32).collect();
        order.sort_by_key(|&c| (std::cmp::Reverse(counts[c as usize]), c));
        let split_values = max_bins as u16;
        let other = split_values; // the aggregated-rare bin
        let num_bins = split_values + 1;
        let mut remap = vec![other; distinct];
        // Kept categories are renumbered by first appearance so the code
        // assignment stays independent of the frequency ordering details.
        let mut kept: Vec<u32> = order[..max_bins].to_vec();
        kept.sort_unstable();
        for (new, old) in kept.into_iter().enumerate() {
            remap[old as usize] = new as u16;
        }
        let codes = raw
            .iter()
            .map(|&c| {
                if c == MISSING_RAW {
                    num_bins
                } else {
                    remap[c as usize]
                }
            })
            .collect();
        BinnedColumn {
            codes,
            num_bins,
            kind: BinKind::Categorical { split_values },
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True iff the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Per-row bin codes (`num_bins` = missing).
    pub fn codes(&self) -> &[u16] {
        &self.codes
    }

    /// Number of value bins (the missing bin is `num_bins` itself).
    pub fn num_bins(&self) -> u16 {
        self.num_bins
    }

    /// Bin semantics.
    pub fn kind(&self) -> &BinKind {
        &self.kind
    }

    /// True for quantile-binned numeric columns.
    pub fn is_numeric(&self) -> bool {
        matches!(self.kind, BinKind::Numeric { .. })
    }

    /// The bin code of row `i`.
    #[inline]
    pub fn code(&self, i: usize) -> u16 {
        self.codes[i]
    }

    /// Missing-value check for row `i`.
    pub fn is_missing(&self, i: usize) -> bool {
        self.codes[i] == self.num_bins
    }
}

impl FeatureColumn {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            FeatureColumn::Numeric(v) => v.len(),
            FeatureColumn::Categorical(v) => v.len(),
        }
    }

    /// True iff the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True for the numeric variant.
    pub fn is_numeric(&self) -> bool {
        matches!(self, FeatureColumn::Numeric(_))
    }

    /// Missing-value check for row `i`.
    pub fn is_missing(&self, i: usize) -> bool {
        match self {
            FeatureColumn::Numeric(v) => v[i].is_nan(),
            FeatureColumn::Categorical(v) => v[i] == MISSING_CAT,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_and_kind() {
        let n = FeatureColumn::Numeric(vec![1.0, f64::NAN]);
        let c = FeatureColumn::Categorical(vec![0, MISSING_CAT, 2]);
        assert_eq!(n.len(), 2);
        assert_eq!(c.len(), 3);
        assert!(n.is_numeric());
        assert!(!c.is_numeric());
    }

    #[test]
    fn missing_detection() {
        let n = FeatureColumn::Numeric(vec![1.0, f64::NAN]);
        let c = FeatureColumn::Categorical(vec![0, MISSING_CAT]);
        assert!(!n.is_missing(0));
        assert!(n.is_missing(1));
        assert!(!c.is_missing(0));
        assert!(c.is_missing(1));
    }

    #[test]
    fn numeric_binning_small_domain_keeps_every_value() {
        let col = BinnedColumn::from_f64(&[3.0, 1.0, 2.0, 1.0, f64::NAN], 16);
        // Distinct values 1,2,3 → thresholds [1,2,3], codes are ranks.
        assert_eq!(col.codes(), &[2, 0, 1, 0, col.num_bins()]);
        assert!(col.is_missing(4));
        assert!(!col.is_missing(0));
        match col.kind() {
            BinKind::Numeric { thresholds } => assert_eq!(thresholds, &[1.0, 2.0, 3.0]),
            _ => panic!("numeric kind"),
        }
    }

    #[test]
    fn numeric_binning_caps_and_orders() {
        let values: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let col = BinnedColumn::from_f64(&values, 16);
        assert!(col.num_bins() <= 17);
        // Codes are monotone in the values.
        for w in col.codes().windows(2) {
            assert!(w[0] <= w[1]);
        }
        // Values above the last threshold land in the implicit top bin.
        assert_eq!(col.code(999), col.num_bins() - 1);
    }

    #[test]
    fn categorical_binning_dense_codes_and_missing() {
        let keys = [Some(7u64), Some(3), Some(7), None, Some(9)];
        let col = BinnedColumn::from_keys(keys, 16);
        // First-appearance order: 7→0, 3→1, 9→2.
        assert_eq!(col.codes(), &[0, 1, 0, col.num_bins(), 2]);
        assert!(!col.is_numeric());
        match col.kind() {
            BinKind::Categorical { split_values } => assert_eq!(*split_values, 3),
            _ => panic!("categorical kind"),
        }
    }

    #[test]
    fn categorical_binning_caps_rare_values_into_other() {
        // Values 0 and 1 dominate; 2..=9 appear once each; budget of 4.
        let keys: Vec<Option<u64>> = (0..40)
            .map(|i| {
                Some(if i < 16 {
                    0
                } else if i < 32 {
                    1
                } else {
                    (i - 30) as u64
                })
            })
            .collect();
        let col = BinnedColumn::from_keys(keys, 4);
        match col.kind() {
            BinKind::Categorical { split_values } => assert_eq!(*split_values, 4),
            _ => panic!("categorical kind"),
        }
        assert_eq!(col.num_bins(), 5);
        // The frequent values kept their own bins.
        assert_eq!(col.code(0), 0);
        assert_eq!(col.code(16), 1);
        // Some rare value collapsed into the "other" bin (code 4).
        assert!(col.codes().contains(&4));
    }
}
