//! Feature-matrix representations decoupled from the storage layer.
//!
//! Two representations coexist:
//!
//! * [`FeatureColumn`] — decoded values (`f64` / dense `u32` codes), the
//!   input of the float-matrix [`DecisionTree`](crate::tree::DecisionTree)
//!   trainer and of the association measures in [`crate::correlation`];
//! * [`BinnedColumn`] — a *pre-binned* column: every value is a small
//!   bin code (`u16`), numeric bins carry their quantile upper edges, and
//!   missing values occupy a dedicated trailing bin. This is what the
//!   histogram trainer ([`crate::tree::HistTree`]) consumes: split search
//!   walks bin histograms instead of re-scanning and re-sorting node rows,
//!   and the codes can be gathered straight from dictionary/typed-array
//!   encoded storage without materializing per-row floats.

/// One feature (attribute) over all rows.
#[derive(Debug, Clone)]
pub enum FeatureColumn {
    /// Numeric feature; `NaN` marks a missing value.
    Numeric(Vec<f64>),
    /// Categorical feature as dense codes; `u32::MAX` marks missing.
    Categorical(Vec<u32>),
}

/// Sentinel for a missing categorical value.
pub const MISSING_CAT: u32 = u32::MAX;

/// What a [`BinnedColumn`]'s bins mean.
#[derive(Debug, Clone)]
pub enum BinKind {
    /// Ordered bins from quantile binning. `thresholds[b]` is the largest
    /// value of bin `b`; a split candidate `≤ thresholds[b]` sends bins
    /// `0..=b` left. Values above the last threshold live in an implicit
    /// top bin (`thresholds.len()`) that can only ever go right.
    Numeric {
        /// Quantile upper edges, strictly increasing.
        thresholds: Vec<f64>,
    },
    /// Unordered bins (one per retained category). Bins `0..split_values`
    /// are equality-split candidates (`code == v` goes left); when the
    /// column's cardinality exceeded the bin budget, bin `split_values`
    /// aggregates the rare remainder and is never a split candidate —
    /// mirroring the float trainer's candidate-value sampling.
    Categorical {
        /// Number of equality-splittable bins.
        split_values: u16,
    },
}

/// The reusable half of a [`BinnedColumn`]: how one column's values map
/// to bin codes, independent of any particular row set.
///
/// Fitting a spec is the only part of binning that inspects the value
/// distribution (quantile sort for numerics, frequency capping for
/// categoricals); encoding any row gather through a fitted spec is a
/// linear pass. This is what makes column statistics shareable across
/// join graphs: the same context-table column appears in many APTs, and a
/// spec fitted **once per base column** can encode every APT's gather of
/// it, instead of each [`BinnedColumn::from_f64`]/[`BinnedColumn::from_keys`]
/// re-deriving thresholds per APT.
#[derive(Debug, Clone)]
pub enum BinSpec {
    /// Quantile thresholds for a numeric column (strictly increasing,
    /// finite).
    Numeric {
        /// Quantile upper edges; bin `b` holds values `≤ thresholds[b]`.
        thresholds: Vec<f64>,
    },
    /// Category dictionary for a categorical column.
    Categorical {
        /// Raw key (interned id / integer / float bits) → bin code.
        remap: std::collections::HashMap<u64, u16>,
        /// Number of equality-splittable bins.
        split_values: u16,
        /// True when a non-splittable "other" bin aggregates the rare
        /// tail (cardinality exceeded the bin budget at fit time).
        has_other: bool,
    },
}

impl BinSpec {
    /// Fits numeric quantile thresholds (`NaN`/`±∞` = excluded) over at
    /// most `max_bins` value bins. Thresholds are drawn from the distinct
    /// finite values the same way the float trainer samples split
    /// candidates: all of them when few, evenly spaced quantiles
    /// otherwise. Columns much longer than the bin budget estimate their
    /// quantiles from a strided sample (≥ 16 values per bin), so the sort
    /// — the only super-linear step — stays bounded.
    pub fn fit_f64(values: &[f64], max_bins: usize) -> BinSpec {
        let max_bins = max_bins.clamp(1, u16::MAX as usize - 2);
        let sample_cap = 16 * max_bins;
        let step = if values.len() > sample_cap {
            values.len().div_ceil(sample_cap)
        } else {
            1
        };
        let mut vals: Vec<f64> = values
            .iter()
            .step_by(step)
            .copied()
            .filter(|x| x.is_finite())
            .collect();
        vals.sort_by(f64::total_cmp);
        vals.dedup();
        let thresholds: Vec<f64> = if vals.len() <= max_bins {
            vals
        } else {
            let step = vals.len() as f64 / max_bins as f64;
            let mut t: Vec<f64> = (0..max_bins)
                .map(|i| vals[(i as f64 * step) as usize])
                .collect();
            t.dedup();
            t
        };
        BinSpec::Numeric { thresholds }
    }

    /// Fits a categorical dictionary from arbitrary per-row keys (`None`
    /// = missing). Dense codes are assigned in first-appearance order;
    /// when the cardinality exceeds `max_bins`, the `max_bins` most
    /// frequent categories (ties: earliest appearance) keep their own
    /// bins and the rest collapse into a non-splittable "other" bin.
    pub fn fit_keys<I: IntoIterator<Item = Option<u64>>>(keys: I, max_bins: usize) -> BinSpec {
        use std::collections::HashMap;
        let max_bins = max_bins.clamp(1, u16::MAX as usize - 2);
        let mut dense: HashMap<u64, u32> = HashMap::new();
        let mut counts: Vec<u32> = Vec::new();
        for key in keys.into_iter().flatten() {
            let next = dense.len() as u32;
            let c = *dense.entry(key).or_insert_with(|| {
                counts.push(0);
                next
            });
            counts[c as usize] += 1;
        }
        let distinct = dense.len();
        if distinct <= max_bins {
            let remap = dense.into_iter().map(|(k, c)| (k, c as u16)).collect();
            return BinSpec::Categorical {
                remap,
                split_values: distinct as u16,
                has_other: false,
            };
        }
        // Cap: keep the most frequent categories, collapse the tail.
        let mut order: Vec<u32> = (0..distinct as u32).collect();
        order.sort_by_key(|&c| (std::cmp::Reverse(counts[c as usize]), c));
        let split_values = max_bins as u16;
        let other = split_values; // the aggregated-rare bin
        let mut code_remap = vec![other; distinct];
        // Kept categories are renumbered by first appearance so the code
        // assignment stays independent of the frequency ordering details.
        let mut kept: Vec<u32> = order[..max_bins].to_vec();
        kept.sort_unstable();
        for (new, old) in kept.into_iter().enumerate() {
            code_remap[old as usize] = new as u16;
        }
        let remap = dense
            .into_iter()
            .map(|(k, c)| (k, code_remap[c as usize]))
            .collect();
        BinSpec::Categorical {
            remap,
            split_values,
            has_other: true,
        }
    }

    /// Number of value bins an encoding through this spec produces (the
    /// missing bin is `num_bins` itself).
    pub fn num_bins(&self) -> u16 {
        match self {
            // One bin per threshold plus the implicit top bin.
            BinSpec::Numeric { thresholds } => (thresholds.len() + 1) as u16,
            BinSpec::Categorical {
                split_values,
                has_other,
                ..
            } => split_values + u16::from(*has_other),
        }
    }

    /// Encodes a numeric gather through the fitted thresholds. Non-finite
    /// values (`NaN`, `±∞`) route to the missing bin — they carry no
    /// usable ordering for threshold splits, and `NaN` is how the mining
    /// gathers mark NULL cells.
    pub fn encode_f64(&self, values: &[f64]) -> BinnedColumn {
        let thresholds = match self {
            BinSpec::Numeric { thresholds } => thresholds,
            BinSpec::Categorical { .. } => panic!("numeric encode through categorical spec"),
        };
        let num_bins = self.num_bins();
        let codes = values
            .iter()
            .map(|&v| {
                if !v.is_finite() {
                    num_bins // missing bin
                } else {
                    thresholds.partition_point(|&t| t < v) as u16
                }
            })
            .collect();
        BinnedColumn {
            codes,
            num_bins,
            kind: BinKind::Numeric {
                thresholds: thresholds.clone(),
            },
        }
    }

    /// Encodes a categorical key gather through the fitted dictionary.
    /// Keys unseen at fit time route to the "other" bin when one exists,
    /// else to the missing bin (a shared spec fitted on the base table
    /// can meet only keys the base table contains; anything else is, by
    /// construction, rare).
    pub fn encode_keys<I: IntoIterator<Item = Option<u64>>>(&self, keys: I) -> BinnedColumn {
        let (remap, split_values, has_other) = match self {
            BinSpec::Categorical {
                remap,
                split_values,
                has_other,
            } => (remap, *split_values, *has_other),
            BinSpec::Numeric { .. } => panic!("categorical encode through numeric spec"),
        };
        let num_bins = self.num_bins();
        let unknown = if has_other { split_values } else { num_bins };
        let codes = keys
            .into_iter()
            .map(|key| match key {
                None => num_bins,
                Some(k) => remap.get(&k).copied().unwrap_or(unknown),
            })
            .collect();
        BinnedColumn {
            codes,
            num_bins,
            kind: BinKind::Categorical { split_values },
        }
    }

    /// Reserves a non-splittable unknown/"other" bin on a categorical
    /// spec that does not have one yet. A spec fitted on a **sample** of
    /// a column can meet real categories at encode time that the sample
    /// missed; without this bin they would be conflated with missing
    /// values. No-op for numeric specs and specs already carrying an
    /// other bin.
    pub fn reserve_unknown_bin(&mut self) {
        if let BinSpec::Categorical { has_other, .. } = self {
            *has_other = true;
        }
    }

    /// Like [`encode_keys`](Self::encode_keys), but for a gather that is
    /// already dictionary-coded: `codes[i]` is a dense first-appearance
    /// code ([`MISSING_CAT`] = missing) and `key_of_code[c]` is the raw
    /// key dense code `c` stands for. The remap lookup runs once per
    /// **distinct** value instead of once per row, so encoding a long
    /// gather through a shared spec costs an array index per row.
    pub fn encode_dense_keys(&self, codes: &[u32], key_of_code: &[u64]) -> BinnedColumn {
        let (remap, split_values, has_other) = match self {
            BinSpec::Categorical {
                remap,
                split_values,
                has_other,
            } => (remap, *split_values, *has_other),
            BinSpec::Numeric { .. } => panic!("categorical encode through numeric spec"),
        };
        let num_bins = self.num_bins();
        let unknown = if has_other { split_values } else { num_bins };
        let lut: Vec<u16> = key_of_code
            .iter()
            .map(|k| remap.get(k).copied().unwrap_or(unknown))
            .collect();
        let out = codes
            .iter()
            .map(|&c| {
                if c == MISSING_CAT {
                    num_bins
                } else {
                    lut[c as usize]
                }
            })
            .collect();
        BinnedColumn {
            codes: out,
            num_bins,
            kind: BinKind::Categorical { split_values },
        }
    }

    /// Approximate heap footprint (cache byte budgeting).
    pub fn approx_bytes(&self) -> usize {
        match self {
            BinSpec::Numeric { thresholds } => thresholds.len() * 8 + 32,
            BinSpec::Categorical { remap, .. } => remap.len() * 16 + 64,
        }
    }
}

/// A pre-binned feature column for histogram tree training.
///
/// Codes are `u16`; valid value bins are `0..num_bins` and the dedicated
/// missing bin is `num_bins` itself (so histograms are simply
/// `num_bins + 1` wide and accumulation is branch-free). Missing values
/// always route to the right child, matching the float trainer.
#[derive(Debug, Clone)]
pub struct BinnedColumn {
    codes: Vec<u16>,
    num_bins: u16,
    kind: BinKind,
}

impl BinnedColumn {
    /// Quantile-bins a numeric column (`NaN`/`±∞` = missing) into at most
    /// `max_bins` value bins: [`BinSpec::fit_f64`] on these values
    /// followed by [`BinSpec::encode_f64`].
    pub fn from_f64(values: &[f64], max_bins: usize) -> BinnedColumn {
        BinSpec::fit_f64(values, max_bins).encode_f64(values)
    }

    /// Builds a categorical binned column from arbitrary per-row keys
    /// (`None` = missing): [`BinSpec::fit_keys`] on these keys followed
    /// by [`BinSpec::encode_keys`].
    pub fn from_keys<I: IntoIterator<Item = Option<u64>> + Clone>(
        keys: I,
        max_bins: usize,
    ) -> BinnedColumn {
        BinSpec::fit_keys(keys.clone(), max_bins).encode_keys(keys)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True iff the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Per-row bin codes (`num_bins` = missing).
    pub fn codes(&self) -> &[u16] {
        &self.codes
    }

    /// Number of value bins (the missing bin is `num_bins` itself).
    pub fn num_bins(&self) -> u16 {
        self.num_bins
    }

    /// Bin semantics.
    pub fn kind(&self) -> &BinKind {
        &self.kind
    }

    /// True for quantile-binned numeric columns.
    pub fn is_numeric(&self) -> bool {
        matches!(self.kind, BinKind::Numeric { .. })
    }

    /// The bin code of row `i`.
    #[inline]
    pub fn code(&self, i: usize) -> u16 {
        self.codes[i]
    }

    /// Missing-value check for row `i`.
    pub fn is_missing(&self, i: usize) -> bool {
        self.codes[i] == self.num_bins
    }
}

impl FeatureColumn {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            FeatureColumn::Numeric(v) => v.len(),
            FeatureColumn::Categorical(v) => v.len(),
        }
    }

    /// True iff the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True for the numeric variant.
    pub fn is_numeric(&self) -> bool {
        matches!(self, FeatureColumn::Numeric(_))
    }

    /// Missing-value check for row `i`.
    pub fn is_missing(&self, i: usize) -> bool {
        match self {
            FeatureColumn::Numeric(v) => v[i].is_nan(),
            FeatureColumn::Categorical(v) => v[i] == MISSING_CAT,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_and_kind() {
        let n = FeatureColumn::Numeric(vec![1.0, f64::NAN]);
        let c = FeatureColumn::Categorical(vec![0, MISSING_CAT, 2]);
        assert_eq!(n.len(), 2);
        assert_eq!(c.len(), 3);
        assert!(n.is_numeric());
        assert!(!c.is_numeric());
    }

    #[test]
    fn missing_detection() {
        let n = FeatureColumn::Numeric(vec![1.0, f64::NAN]);
        let c = FeatureColumn::Categorical(vec![0, MISSING_CAT]);
        assert!(!n.is_missing(0));
        assert!(n.is_missing(1));
        assert!(!c.is_missing(0));
        assert!(c.is_missing(1));
    }

    #[test]
    fn numeric_binning_small_domain_keeps_every_value() {
        let col = BinnedColumn::from_f64(&[3.0, 1.0, 2.0, 1.0, f64::NAN], 16);
        // Distinct values 1,2,3 → thresholds [1,2,3], codes are ranks.
        assert_eq!(col.codes(), &[2, 0, 1, 0, col.num_bins()]);
        assert!(col.is_missing(4));
        assert!(!col.is_missing(0));
        match col.kind() {
            BinKind::Numeric { thresholds } => assert_eq!(thresholds, &[1.0, 2.0, 3.0]),
            _ => panic!("numeric kind"),
        }
    }

    #[test]
    fn numeric_binning_caps_and_orders() {
        let values: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let col = BinnedColumn::from_f64(&values, 16);
        assert!(col.num_bins() <= 17);
        // Codes are monotone in the values.
        for w in col.codes().windows(2) {
            assert!(w[0] <= w[1]);
        }
        // Values above the last threshold land in the implicit top bin.
        assert_eq!(col.code(999), col.num_bins() - 1);
    }

    #[test]
    fn categorical_binning_dense_codes_and_missing() {
        let keys = [Some(7u64), Some(3), Some(7), None, Some(9)];
        let col = BinnedColumn::from_keys(keys, 16);
        // First-appearance order: 7→0, 3→1, 9→2.
        assert_eq!(col.codes(), &[0, 1, 0, col.num_bins(), 2]);
        assert!(!col.is_numeric());
        match col.kind() {
            BinKind::Categorical { split_values } => assert_eq!(*split_values, 3),
            _ => panic!("categorical kind"),
        }
    }

    #[test]
    fn non_finite_values_route_to_missing_bin() {
        let col = BinnedColumn::from_f64(
            &[1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 3.0, 2.0],
            16,
        );
        // Thresholds come from the finite values only.
        match col.kind() {
            BinKind::Numeric { thresholds } => assert_eq!(thresholds, &[1.0, 2.0, 3.0]),
            _ => panic!("numeric kind"),
        }
        // NaN and both infinities all land in the missing bin.
        for i in [1, 2, 3] {
            assert!(col.is_missing(i), "row {i} should be missing");
        }
        assert!(!col.is_missing(0) && !col.is_missing(4) && !col.is_missing(5));
    }

    #[test]
    fn spec_fit_then_encode_matches_from_f64() {
        let values: Vec<f64> = (0..300).map(|i| ((i * 37) % 101) as f64).collect();
        let direct = BinnedColumn::from_f64(&values, 16);
        let spec = BinSpec::fit_f64(&values, 16);
        let via_spec = spec.encode_f64(&values);
        assert_eq!(direct.codes(), via_spec.codes());
        assert_eq!(direct.num_bins(), via_spec.num_bins());
    }

    #[test]
    fn shared_numeric_spec_encodes_a_different_gather() {
        // Fit on the "base column", encode a subset gather (what a join
        // graph's APT sees): codes follow the shared thresholds.
        let base: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let spec = BinSpec::fit_f64(&base, 4);
        let gathered = [0.0, 55.0, 99.0, f64::NAN];
        let col = spec.encode_f64(&gathered);
        assert_eq!(col.num_bins(), spec.num_bins());
        assert_eq!(col.code(0), 0);
        assert!(col.is_missing(3));
        // Codes are monotone in the encoded values.
        assert!(col.code(0) <= col.code(1) && col.code(1) <= col.code(2));
    }

    #[test]
    fn shared_categorical_spec_routes_unknown_keys() {
        // Uncapped spec: an unknown key has no "other" bin → missing.
        let spec = BinSpec::fit_keys([Some(1u64), Some(2), Some(3)], 16);
        let col = spec.encode_keys([Some(2u64), Some(99), None]);
        assert_eq!(col.code(0), 1);
        assert!(col.is_missing(1), "unknown key routes to missing bin");
        assert!(col.is_missing(2));

        // Capped spec: unknown keys join the aggregated-rare bin instead.
        let keys: Vec<Option<u64>> = (0..40).map(|i| Some((i % 10) as u64)).collect();
        let capped = BinSpec::fit_keys(keys, 4);
        let col = capped.encode_keys([Some(999u64), None]);
        match capped {
            BinSpec::Categorical {
                split_values,
                has_other,
                ..
            } => {
                assert!(has_other);
                assert_eq!(col.code(0), split_values, "unknown → other bin");
            }
            _ => panic!("categorical spec"),
        }
        assert!(col.is_missing(1));
    }

    #[test]
    fn categorical_binning_caps_rare_values_into_other() {
        // Values 0 and 1 dominate; 2..=9 appear once each; budget of 4.
        let keys: Vec<Option<u64>> = (0..40)
            .map(|i| {
                Some(if i < 16 {
                    0
                } else if i < 32 {
                    1
                } else {
                    (i - 30) as u64
                })
            })
            .collect();
        let col = BinnedColumn::from_keys(keys, 4);
        match col.kind() {
            BinKind::Categorical { split_values } => assert_eq!(*split_values, 4),
            _ => panic!("categorical kind"),
        }
        assert_eq!(col.num_bins(), 5);
        // The frequent values kept their own bins.
        assert_eq!(col.code(0), 0);
        assert_eq!(col.code(16), 1);
        // Some rare value collapsed into the "other" bin (code 4).
        assert!(col.codes().contains(&4));
    }
}
