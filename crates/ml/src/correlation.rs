//! Association measures between attributes of mixed type, feeding the
//! attribute-clustering step (paper §3.1: "cluster attributes based on
//! their mutual correlation"). All measures are normalized to `[0, 1]`
//! where 1 means perfectly associated:
//!
//! * numeric–numeric: absolute Pearson correlation |r|,
//! * categorical–categorical: Cramér's V,
//! * categorical–numeric: correlation ratio η.

use std::collections::BTreeMap;

use crate::dataset::{FeatureColumn, MISSING_CAT};

/// Pearson correlation coefficient of paired samples (missing = NaN pairs
/// skipped). Returns 0.0 when either side is constant.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    let pairs: Vec<(f64, f64)> = xs
        .iter()
        .zip(ys)
        .filter(|(x, y)| !x.is_nan() && !y.is_nan())
        .map(|(&x, &y)| (x, y))
        .collect();
    let n = pairs.len() as f64;
    if n < 2.0 {
        return 0.0;
    }
    let mx = pairs.iter().map(|p| p.0).sum::<f64>() / n;
    let my = pairs.iter().map(|p| p.1).sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in &pairs {
        cov += (x - mx) * (y - my);
        vx += (x - mx).powi(2);
        vy += (y - my).powi(2);
    }
    if vx <= 0.0 || vy <= 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Cramér's V between two categorical columns (bias-uncorrected), in
/// `[0, 1]`. Missing codes are skipped.
pub fn cramers_v(xs: &[u32], ys: &[u32]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    // BTreeMaps keep the summation order deterministic — float
    // addition is not associative, and HashMap iteration order would make
    // near-tie clustering decisions flap between runs.
    let mut joint: BTreeMap<(u32, u32), f64> = BTreeMap::new();
    let mut row: BTreeMap<u32, f64> = BTreeMap::new();
    let mut col: BTreeMap<u32, f64> = BTreeMap::new();
    let mut n = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        if x == MISSING_CAT || y == MISSING_CAT {
            continue;
        }
        *joint.entry((x, y)).or_default() += 1.0;
        *row.entry(x).or_default() += 1.0;
        *col.entry(y).or_default() += 1.0;
        n += 1.0;
    }
    if n == 0.0 || row.len() < 2 || col.len() < 2 {
        // Constant column: by convention fully determined ⇒ treat as
        // unassociated for clustering purposes (no information).
        return if row.len() == 1 && col.len() == 1 {
            1.0
        } else {
            0.0
        };
    }
    // χ² over the full contingency table — zero-observation cells still
    // contribute (they are exactly what makes identical columns score 1).
    let mut chi2 = 0.0;
    for (x, rx) in &row {
        for (y, cy) in &col {
            let exp = rx * cy / n;
            let obs = joint.get(&(*x, *y)).copied().unwrap_or(0.0);
            chi2 += (obs - exp).powi(2) / exp;
        }
    }
    let k = row.len().min(col.len()) as f64;
    (chi2 / (n * (k - 1.0))).sqrt().min(1.0)
}

/// Correlation ratio η between a categorical and a numeric column, in
/// `[0, 1]`: the fraction of the numeric variance explained by the
/// category, square-rooted.
pub fn correlation_ratio(cats: &[u32], nums: &[f64]) -> f64 {
    assert_eq!(cats.len(), nums.len());
    let mut groups: BTreeMap<u32, (f64, f64)> = BTreeMap::new(); // (sum, count)
    let mut total_sum = 0.0;
    let mut total_n = 0.0;
    for (&c, &x) in cats.iter().zip(nums) {
        if c == MISSING_CAT || x.is_nan() {
            continue;
        }
        let e = groups.entry(c).or_default();
        e.0 += x;
        e.1 += 1.0;
        total_sum += x;
        total_n += 1.0;
    }
    if total_n < 2.0 || groups.len() < 2 {
        return 0.0;
    }
    let grand_mean = total_sum / total_n;
    let mut between = 0.0;
    for (sum, count) in groups.values() {
        let gm = sum / count;
        between += count * (gm - grand_mean).powi(2);
    }
    let mut total_var = 0.0;
    for (&c, &x) in cats.iter().zip(nums) {
        if c == MISSING_CAT || x.is_nan() {
            continue;
        }
        total_var += (x - grand_mean).powi(2);
    }
    if total_var <= 0.0 {
        return 0.0;
    }
    (between / total_var).sqrt().min(1.0)
}

/// Symmetric association matrix over mixed-type columns, diagonal = 1.
pub fn assoc_matrix(cols: &[FeatureColumn]) -> Vec<Vec<f64>> {
    let p = cols.len();
    let mut m = vec![vec![0.0; p]; p];
    for i in 0..p {
        m[i][i] = 1.0;
        for j in (i + 1)..p {
            let a = match (&cols[i], &cols[j]) {
                (FeatureColumn::Numeric(x), FeatureColumn::Numeric(y)) => pearson(x, y).abs(),
                (FeatureColumn::Categorical(x), FeatureColumn::Categorical(y)) => cramers_v(x, y),
                (FeatureColumn::Categorical(c), FeatureColumn::Numeric(n))
                | (FeatureColumn::Numeric(n), FeatureColumn::Categorical(c)) => {
                    correlation_ratio(c, n)
                }
            };
            m[i][j] = a;
            m[j][i] = a;
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pearson_perfect_linear() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x - 7.0).collect();
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = xs.iter().map(|x| -x).collect();
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_is_zero() {
        let xs = vec![1.0; 10];
        let ys: Vec<f64> = (0..10).map(|i| i as f64).collect();
        assert_eq!(pearson(&xs, &ys), 0.0);
    }

    #[test]
    fn pearson_skips_nan_pairs() {
        let xs = vec![1.0, 2.0, f64::NAN, 4.0];
        let ys = vec![2.0, 4.0, 100.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cramers_v_identical_columns() {
        let xs: Vec<u32> = (0..100).map(|i| (i % 4) as u32).collect();
        assert!((cramers_v(&xs, &xs) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cramers_v_independent_columns() {
        // x cycles mod 2, y cycles mod 5 → independent.
        let xs: Vec<u32> = (0..1000).map(|i| (i % 2) as u32).collect();
        let ys: Vec<u32> = (0..1000).map(|i| (i % 5) as u32).collect();
        assert!(cramers_v(&xs, &ys) < 0.05);
    }

    #[test]
    fn correlation_ratio_determined() {
        // Numeric fully determined by category: age vs. birth-cohort style.
        let cats: Vec<u32> = (0..90).map(|i| (i % 3) as u32).collect();
        let nums: Vec<f64> = cats.iter().map(|&c| c as f64 * 10.0).collect();
        assert!((correlation_ratio(&cats, &nums) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn correlation_ratio_unrelated() {
        let cats: Vec<u32> = (0..400).map(|i| (i % 2) as u32).collect();
        let nums: Vec<f64> = (0..400).map(|i| ((i * 7919) % 400) as f64).collect();
        assert!(correlation_ratio(&cats, &nums) < 0.15);
    }

    #[test]
    fn assoc_matrix_is_symmetric_unit_diagonal() {
        let cols = vec![
            FeatureColumn::Numeric((0..60).map(|i| i as f64).collect()),
            FeatureColumn::Numeric((0..60).map(|i| (i * 2) as f64).collect()),
            FeatureColumn::Categorical((0..60).map(|i| (i % 3) as u32).collect()),
        ];
        let m = assoc_matrix(&cols);
        for (i, row) in m.iter().enumerate() {
            assert_eq!(row[i], 1.0);
            for (j, cell) in row.iter().enumerate() {
                assert!((cell - m[j][i]).abs() < 1e-12);
                assert!((0.0..=1.0).contains(cell));
            }
        }
        // The two colinear numeric columns are perfectly associated.
        assert!((m[0][1] - 1.0).abs() < 1e-9);
    }

    proptest! {
        /// |r| ≤ 1 always.
        #[test]
        fn prop_pearson_bounded(
            xs in proptest::collection::vec(-100.0f64..100.0, 2..64),
        ) {
            let ys: Vec<f64> = xs.iter().map(|x| x * 0.5 + 1.0).collect();
            let r = pearson(&xs, &ys);
            prop_assert!(r.abs() <= 1.0 + 1e-9);
        }
    }
}
