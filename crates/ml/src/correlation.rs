//! Association measures between attributes of mixed type, feeding the
//! attribute-clustering step (paper §3.1: "cluster attributes based on
//! their mutual correlation"). All measures are normalized to `[0, 1]`
//! where 1 means perfectly associated:
//!
//! * numeric–numeric: absolute Pearson correlation |r|,
//! * categorical–categorical: Cramér's V,
//! * categorical–numeric: correlation ratio η.

use std::collections::{BTreeMap, HashMap};

use crate::dataset::{FeatureColumn, MISSING_CAT};

/// Pearson correlation coefficient of paired samples (missing = NaN pairs
/// skipped). Returns 0.0 when either side is constant. Two fused passes,
/// no intermediate allocation — this runs once per numeric attribute pair
/// of every APT's clustering step.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    // Single fused pass over raw moments; centering happens algebraically
    // (`Σ(x−x̄)(y−ȳ) = Σxy − n·x̄·ȳ`). The lost numerical stability is
    // irrelevant at clustering precision, and the pass count is what this
    // costs per attribute pair of every APT.
    let mut n = 0.0f64;
    let mut sx = 0.0;
    let mut sy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    let mut sxy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        if !x.is_nan() && !y.is_nan() {
            n += 1.0;
            sx += x;
            sy += y;
            sxx += x * x;
            syy += y * y;
            sxy += x * y;
        }
    }
    if n < 2.0 {
        return 0.0;
    }
    let cov = sxy - sx * sy / n;
    let vx = sxx - sx * sx / n;
    let vy = syy - sy * sy / n;
    if vx <= 0.0 || vy <= 0.0 {
        return 0.0;
    }
    (cov / (vx.sqrt() * vy.sqrt())).clamp(-1.0, 1.0)
}

/// Cramér's V between two categorical columns (bias-uncorrected), in
/// `[0, 1]`. Missing codes are skipped.
///
/// Zero-observation cells of the contingency table still contribute to χ²
/// (they are exactly what makes identical columns score 1), but they are
/// never enumerated: with `e = rx·cy/n`, the full-table sum telescopes to
/// `χ² = Σ_observed o²/e − n`, so the cost is `O(n + observed·log)`
/// instead of `O(distinct_x × distinct_y)` — the latter is quadratic for
/// high-cardinality pairs (dates, ids) and used to dominate feature
/// selection. Observed cells are summed in sorted key order, keeping the
/// float accumulation deterministic (HashMap iteration order would make
/// near-tie clustering decisions flap between runs).
pub fn cramers_v(xs: &[u32], ys: &[u32]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    // Feature codes are dense by construction, so marginals live in flat
    // arrays; the joint table goes dense too while `kx·ky` stays small,
    // falling back to a hash map (with a determinism sort) beyond that.
    const DENSE_CODE_LIMIT: u32 = 1 << 16;
    const DENSE_JOINT_LIMIT: u64 = 1 << 22;
    let max_code = xs
        .iter()
        .chain(ys)
        .filter(|&&c| c != MISSING_CAT)
        .max()
        .copied()
        .unwrap_or(0);
    if max_code < DENSE_CODE_LIMIT {
        let kx = max_code as usize + 1;
        let mut row = vec![0.0f64; kx];
        let mut col = vec![0.0f64; kx];
        let mut n = 0.0;
        let dense_joint = (kx as u64 * kx as u64) <= DENSE_JOINT_LIMIT;
        let mut joint_dense = if dense_joint {
            vec![0.0f64; kx * kx]
        } else {
            Vec::new()
        };
        let mut joint_map: HashMap<u64, f64> = HashMap::new();
        for (&x, &y) in xs.iter().zip(ys) {
            if x == MISSING_CAT || y == MISSING_CAT {
                continue;
            }
            row[x as usize] += 1.0;
            col[y as usize] += 1.0;
            n += 1.0;
            if dense_joint {
                joint_dense[x as usize * kx + y as usize] += 1.0;
            } else {
                *joint_map.entry(((x as u64) << 32) | y as u64).or_default() += 1.0;
            }
        }
        let rows_used = row.iter().filter(|&&c| c > 0.0).count();
        let cols_used = col.iter().filter(|&&c| c > 0.0).count();
        if n == 0.0 || rows_used < 2 || cols_used < 2 {
            return if rows_used == 1 && cols_used == 1 {
                1.0
            } else {
                0.0
            };
        }
        let mut chi2 = 0.0;
        if dense_joint {
            for (cell, &obs) in joint_dense.iter().enumerate() {
                if obs > 0.0 {
                    let exp = row[cell / kx] * col[cell % kx] / n;
                    chi2 += obs * obs / exp;
                }
            }
        } else {
            let mut cells: Vec<(u64, f64)> = joint_map.into_iter().collect();
            cells.sort_unstable_by_key(|&(key, _)| key);
            for (key, obs) in cells {
                let exp = row[(key >> 32) as usize] * col[key as u32 as usize] / n;
                chi2 += obs * obs / exp;
            }
        }
        return finish_chi2(chi2, n, rows_used, cols_used);
    }

    let mut joint: HashMap<u64, f64> = HashMap::new();
    let mut row: HashMap<u32, f64> = HashMap::new();
    let mut col: HashMap<u32, f64> = HashMap::new();
    let mut n = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        if x == MISSING_CAT || y == MISSING_CAT {
            continue;
        }
        *joint.entry(((x as u64) << 32) | y as u64).or_default() += 1.0;
        *row.entry(x).or_default() += 1.0;
        *col.entry(y).or_default() += 1.0;
        n += 1.0;
    }
    if n == 0.0 || row.len() < 2 || col.len() < 2 {
        // Constant column: by convention fully determined ⇒ treat as
        // unassociated for clustering purposes (no information).
        return if row.len() == 1 && col.len() == 1 {
            1.0
        } else {
            0.0
        };
    }
    let mut cells: Vec<(u64, f64)> = joint.into_iter().collect();
    cells.sort_unstable_by_key(|&(key, _)| key);
    let mut chi2 = 0.0;
    for (key, obs) in cells {
        let exp = row[&((key >> 32) as u32)] * col[&(key as u32)] / n;
        chi2 += obs * obs / exp;
    }
    finish_chi2(chi2, n, row.len(), col.len())
}

/// `Σ_all (o−e)²/e = Σ_obs o²/e − n`; clamp the tiny negative residue
/// float cancellation can leave for near-independent columns.
fn finish_chi2(partial: f64, n: f64, rows_used: usize, cols_used: usize) -> f64 {
    let chi2 = (partial - n).max(0.0);
    let k = rows_used.min(cols_used) as f64;
    (chi2 / (n * (k - 1.0))).sqrt().min(1.0)
}

/// Correlation ratio η between a categorical and a numeric column, in
/// `[0, 1]`: the fraction of the numeric variance explained by the
/// category, square-rooted.
pub fn correlation_ratio(cats: &[u32], nums: &[f64]) -> f64 {
    assert_eq!(cats.len(), nums.len());
    // Dense per-group accumulators when codes are small (the common case
    // — feature codes are dense); iteration in index order matches the
    // previous sorted-map order, so the float sums are unchanged.
    const DENSE_CODE_LIMIT: u32 = 1 << 16;
    let max_code = cats
        .iter()
        .filter(|&&c| c != MISSING_CAT)
        .max()
        .copied()
        .unwrap_or(0);
    let mut dense: Vec<(f64, f64)> = Vec::new(); // (sum, count)
    let mut sparse: BTreeMap<u32, (f64, f64)> = BTreeMap::new();
    let use_dense = max_code < DENSE_CODE_LIMIT;
    if use_dense {
        dense = vec![(0.0, 0.0); max_code as usize + 1];
    }
    let mut total_sum = 0.0;
    let mut total_sq = 0.0;
    let mut total_n = 0.0;
    for (&c, &x) in cats.iter().zip(nums) {
        if c == MISSING_CAT || x.is_nan() {
            continue;
        }
        let e = if use_dense {
            &mut dense[c as usize]
        } else {
            sparse.entry(c).or_default()
        };
        e.0 += x;
        e.1 += 1.0;
        total_sum += x;
        total_sq += x * x;
        total_n += 1.0;
    }
    let group_values: Vec<(f64, f64)> = if use_dense {
        dense
            .into_iter()
            .filter(|&(_, count)| count > 0.0)
            .collect()
    } else {
        sparse.into_values().collect()
    };
    if total_n < 2.0 || group_values.len() < 2 {
        return 0.0;
    }
    // One pass of raw moments: `Σ(x−x̄)² = Σx² − n·x̄²` and
    // `Σ n_g (x̄_g − x̄)² = Σ s_g²/n_g − n·x̄²` — no second data scan.
    let grand_mean = total_sum / total_n;
    let mut between = 0.0;
    for (sum, count) in &group_values {
        between += sum * sum / count;
    }
    between -= total_n * grand_mean * grand_mean;
    let total_var = total_sq - total_n * grand_mean * grand_mean;
    if total_var <= 0.0 || between <= 0.0 {
        return 0.0;
    }
    (between / total_var).sqrt().min(1.0)
}

/// Symmetric association matrix over mixed-type columns, diagonal = 1.
pub fn assoc_matrix(cols: &[FeatureColumn]) -> Vec<Vec<f64>> {
    let p = cols.len();
    let mut m = vec![vec![0.0; p]; p];
    for i in 0..p {
        m[i][i] = 1.0;
        for j in (i + 1)..p {
            let a = match (&cols[i], &cols[j]) {
                (FeatureColumn::Numeric(x), FeatureColumn::Numeric(y)) => pearson(x, y).abs(),
                (FeatureColumn::Categorical(x), FeatureColumn::Categorical(y)) => cramers_v(x, y),
                (FeatureColumn::Categorical(c), FeatureColumn::Numeric(n))
                | (FeatureColumn::Numeric(n), FeatureColumn::Categorical(c)) => {
                    correlation_ratio(c, n)
                }
            };
            m[i][j] = a;
            m[j][i] = a;
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pearson_perfect_linear() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x - 7.0).collect();
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = xs.iter().map(|x| -x).collect();
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_is_zero() {
        let xs = vec![1.0; 10];
        let ys: Vec<f64> = (0..10).map(|i| i as f64).collect();
        assert_eq!(pearson(&xs, &ys), 0.0);
    }

    #[test]
    fn pearson_skips_nan_pairs() {
        let xs = vec![1.0, 2.0, f64::NAN, 4.0];
        let ys = vec![2.0, 4.0, 100.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cramers_v_identical_columns() {
        let xs: Vec<u32> = (0..100).map(|i| (i % 4) as u32).collect();
        assert!((cramers_v(&xs, &xs) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cramers_v_independent_columns() {
        // x cycles mod 2, y cycles mod 5 → independent.
        let xs: Vec<u32> = (0..1000).map(|i| (i % 2) as u32).collect();
        let ys: Vec<u32> = (0..1000).map(|i| (i % 5) as u32).collect();
        assert!(cramers_v(&xs, &ys) < 0.05);
    }

    #[test]
    fn correlation_ratio_determined() {
        // Numeric fully determined by category: age vs. birth-cohort style.
        let cats: Vec<u32> = (0..90).map(|i| (i % 3) as u32).collect();
        let nums: Vec<f64> = cats.iter().map(|&c| c as f64 * 10.0).collect();
        assert!((correlation_ratio(&cats, &nums) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn correlation_ratio_unrelated() {
        let cats: Vec<u32> = (0..400).map(|i| (i % 2) as u32).collect();
        let nums: Vec<f64> = (0..400).map(|i| ((i * 7919) % 400) as f64).collect();
        assert!(correlation_ratio(&cats, &nums) < 0.15);
    }

    #[test]
    fn assoc_matrix_is_symmetric_unit_diagonal() {
        let cols = vec![
            FeatureColumn::Numeric((0..60).map(|i| i as f64).collect()),
            FeatureColumn::Numeric((0..60).map(|i| (i * 2) as f64).collect()),
            FeatureColumn::Categorical((0..60).map(|i| (i % 3) as u32).collect()),
        ];
        let m = assoc_matrix(&cols);
        for (i, row) in m.iter().enumerate() {
            assert_eq!(row[i], 1.0);
            for (j, cell) in row.iter().enumerate() {
                assert!((cell - m[j][i]).abs() < 1e-12);
                assert!((0.0..=1.0).contains(cell));
            }
        }
        // The two colinear numeric columns are perfectly associated.
        assert!((m[0][1] - 1.0).abs() < 1e-9);
    }

    proptest! {
        /// |r| ≤ 1 always.
        #[test]
        fn prop_pearson_bounded(
            xs in proptest::collection::vec(-100.0f64..100.0, 2..64),
        ) {
            let ys: Vec<f64> = xs.iter().map(|x| x * 0.5 + 1.0).collect();
            let r = pearson(&xs, &ys);
            prop_assert!(r.abs() <= 1.0 + 1e-9);
        }
    }
}
