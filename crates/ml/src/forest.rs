//! Random forests = bagged CART trees + mean-decrease-impurity
//! importances.
//!
//! CaJaDE trains a forest to predict whether an APT row belongs to the
//! provenance of output `t1` or `t2` (paper §3.1, citing Breiman 2001) and
//! keeps the λ#sel-attr most relevant attributes for pattern mining.
//! [`RandomForest`] is the float-matrix reference; [`HistForest`] bags
//! histogram trees over pre-binned columns through the *same* bagging
//! loop (the private `fit_bagged`), so the bootstrap draws, √p feature
//! default, and importance normalization stay in lockstep by
//! construction. The
//! two agree bit-for-bit when the binning is lossless **and** no
//! per-node candidate sampling fires in the float trainer (its
//! categorical split search consumes extra RNG once a node exceeds
//! `max_thresholds` distinct values, which the histogram trainer never
//! does) — the condition the equivalence tests arrange.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use crate::dataset::{BinnedColumn, FeatureColumn};
use crate::tree::{DecisionTree, HistTree, TreeConfig};

/// The bagging loop shared by both forests: seeded bootstrap draws,
/// √p features-per-node default, per-tree fit, summed + normalized
/// mean-decrease-impurity importances. One copy keeps the two forests'
/// RNG streams identical by construction.
fn fit_bagged<T>(
    num_features: usize,
    n: usize,
    config: &RandomForestConfig,
    mut fit_tree: impl FnMut(&[u32], &TreeConfig, &mut StdRng) -> T,
    importances_of: impl Fn(&T) -> &[f64],
) -> (Vec<T>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut tree_cfg = config.tree.clone();
    if tree_cfg.features_per_node.is_none() {
        tree_cfg.features_per_node = Some(((num_features as f64).sqrt().ceil() as usize).max(1));
    }

    let sample_size = ((n as f64) * config.bootstrap_fraction).round().max(1.0) as usize;
    let mut trees = Vec::with_capacity(config.num_trees);
    let mut importances = vec![0.0; num_features];

    for _ in 0..config.num_trees {
        let rows: Vec<u32> = if n == 0 {
            Vec::new()
        } else {
            (0..sample_size)
                .map(|_| rng.gen_range(0..n) as u32)
                .collect()
        };
        let tree = fit_tree(&rows, &tree_cfg, &mut rng);
        for (imp, t) in importances.iter_mut().zip(importances_of(&tree)) {
            *imp += t;
        }
        trees.push(tree);
    }

    let total: f64 = importances.iter().sum();
    if total > 0.0 {
        for imp in &mut importances {
            *imp /= total;
        }
    }
    (trees, importances)
}

/// Feature indices sorted by decreasing importance (ties broken by
/// index for determinism).
fn ranked_by_importance(importances: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..importances.len()).collect();
    // `total_cmp`, so a NaN importance cannot make the ranking depend on
    // scan order.
    idx.sort_by(|&a, &b| importances[b].total_cmp(&importances[a]).then(a.cmp(&b)));
    idx
}

/// Forest hyper-parameters.
#[derive(Debug, Clone)]
pub struct RandomForestConfig {
    /// Number of trees.
    pub num_trees: usize,
    /// Per-tree configuration (feature subsampling defaults to √p).
    pub tree: TreeConfig,
    /// Bootstrap sample size as a fraction of the training set.
    pub bootstrap_fraction: f64,
    /// RNG seed (forests are deterministic given the seed).
    pub seed: u64,
}

impl Default for RandomForestConfig {
    fn default() -> Self {
        Self {
            num_trees: 20,
            tree: TreeConfig::default(),
            bootstrap_fraction: 1.0,
            seed: 0xCA1ADE,
        }
    }
}

/// A fitted forest.
#[derive(Debug)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    /// Normalized mean-decrease-impurity importances (sum to 1 unless all
    /// zero).
    pub importances: Vec<f64>,
}

impl RandomForest {
    /// Fits a forest on all rows of `features` / `labels`.
    pub fn fit(
        features: &[FeatureColumn],
        labels: &[bool],
        config: &RandomForestConfig,
    ) -> RandomForest {
        assert!(!features.is_empty(), "need at least one feature");
        let n = labels.len();
        assert!(features.iter().all(|f| f.len() == n), "ragged features");

        let (trees, importances) = fit_bagged(
            features.len(),
            n,
            config,
            |rows, tree_cfg, rng| {
                let rows: Vec<usize> = rows.iter().map(|&r| r as usize).collect();
                DecisionTree::fit(features, labels, &rows, tree_cfg, rng)
            },
            |t| &t.importances,
        );
        RandomForest { trees, importances }
    }

    /// Mean predicted probability of the positive class.
    pub fn predict_proba(&self, features: &[FeatureColumn], row: usize) -> f64 {
        if self.trees.is_empty() {
            return 0.5;
        }
        self.trees
            .iter()
            .map(|t| t.predict_proba(features, row))
            .sum::<f64>()
            / self.trees.len() as f64
    }

    /// Feature indices sorted by decreasing importance (ties broken by
    /// index for determinism).
    pub fn ranked_features(&self) -> Vec<usize> {
        ranked_by_importance(&self.importances)
    }
}

/// A forest of [`HistTree`]s over pre-binned columns.
///
/// Shares [`RandomForestConfig`] (and, through the common bagging
/// loop, the bootstrap / √p-feature defaults and RNG stream) with the
/// float forest; only the per-tree trainer differs.
#[derive(Debug)]
pub struct HistForest {
    trees: Vec<HistTree>,
    /// Normalized mean-decrease-impurity importances (sum to 1 unless all
    /// zero).
    pub importances: Vec<f64>,
}

impl HistForest {
    /// Fits a histogram forest on all rows of `cols` / `labels`.
    pub fn fit(cols: &[BinnedColumn], labels: &[bool], config: &RandomForestConfig) -> HistForest {
        assert!(!cols.is_empty(), "need at least one feature");
        let n = labels.len();
        assert!(cols.iter().all(|c| c.len() == n), "ragged features");

        let (trees, importances) = fit_bagged(
            cols.len(),
            n,
            config,
            |rows, tree_cfg, rng| HistTree::fit(cols, labels, rows, tree_cfg, rng),
            |t| &t.importances,
        );
        HistForest { trees, importances }
    }

    /// Mean predicted probability of the positive class.
    pub fn predict_proba(&self, cols: &[BinnedColumn], row: usize) -> f64 {
        if self.trees.is_empty() {
            return 0.5;
        }
        self.trees
            .iter()
            .map(|t| t.predict_proba(cols, row))
            .sum::<f64>()
            / self.trees.len() as f64
    }

    /// Feature indices sorted by decreasing importance (ties broken by
    /// index for determinism).
    pub fn ranked_features(&self) -> Vec<usize> {
        ranked_by_importance(&self.importances)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> (Vec<FeatureColumn>, Vec<bool>) {
        // y = (a XOR b); c is noise. A single stump cannot learn XOR but a
        // depth-2 forest can.
        let n = 400;
        let a: Vec<u32> = (0..n).map(|i| (i % 2) as u32).collect();
        let b: Vec<u32> = (0..n).map(|i| ((i / 2) % 2) as u32).collect();
        let c: Vec<f64> = (0..n).map(|i| ((i * 37) % 100) as f64).collect();
        let labels: Vec<bool> = a.iter().zip(&b).map(|(&x, &y)| (x ^ y) == 1).collect();
        (
            vec![
                FeatureColumn::Categorical(a),
                FeatureColumn::Categorical(b),
                FeatureColumn::Numeric(c),
            ],
            labels,
        )
    }

    #[test]
    fn forest_learns_xor_and_ranks_noise_last() {
        let (features, labels) = xor_data();
        let forest = RandomForest::fit(&features, &labels, &RandomForestConfig::default());
        let correct = (0..labels.len())
            .filter(|&r| (forest.predict_proba(&features, r) > 0.5) == labels[r])
            .count();
        assert!(correct as f64 / labels.len() as f64 > 0.9, "acc {correct}");
        let ranked = forest.ranked_features();
        assert_eq!(ranked[2], 2, "noise feature ranked last: {ranked:?}");
    }

    #[test]
    fn importances_normalized() {
        let (features, labels) = xor_data();
        let forest = RandomForest::fit(&features, &labels, &RandomForestConfig::default());
        let sum: f64 = forest.importances.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(forest.importances.iter().all(|&i| i >= 0.0));
    }

    #[test]
    fn deterministic_given_seed() {
        let (features, labels) = xor_data();
        let cfg = RandomForestConfig::default();
        let f1 = RandomForest::fit(&features, &labels, &cfg);
        let f2 = RandomForest::fit(&features, &labels, &cfg);
        assert_eq!(f1.importances, f2.importances);
    }

    #[test]
    fn constant_labels_give_uninformative_forest() {
        let features = vec![FeatureColumn::Numeric((0..50).map(|i| i as f64).collect())];
        let labels = vec![true; 50];
        let forest = RandomForest::fit(&features, &labels, &RandomForestConfig::default());
        // No split ever helps; importances all zero.
        assert!(forest.importances.iter().all(|&i| i == 0.0));
        assert!(forest.predict_proba(&features, 0) > 0.99);
    }

    // ---- histogram forest ---------------------------------------------

    fn binned_xor_data() -> (Vec<BinnedColumn>, Vec<bool>) {
        let (features, labels) = xor_data();
        let cols = features
            .iter()
            .map(|f| match f {
                FeatureColumn::Numeric(v) => BinnedColumn::from_f64(v, 32),
                FeatureColumn::Categorical(v) => {
                    BinnedColumn::from_keys(v.iter().map(|&c| Some(c as u64)), 32)
                }
            })
            .collect();
        (cols, labels)
    }

    #[test]
    fn hist_forest_learns_xor_and_ranks_noise_last() {
        let (cols, labels) = binned_xor_data();
        let forest = HistForest::fit(&cols, &labels, &RandomForestConfig::default());
        let correct = (0..labels.len())
            .filter(|&r| (forest.predict_proba(&cols, r) > 0.5) == labels[r])
            .count();
        assert!(correct as f64 / labels.len() as f64 > 0.9, "acc {correct}");
        assert_eq!(forest.ranked_features()[2], 2);
    }

    #[test]
    fn hist_forest_deterministic_and_normalized() {
        let (cols, labels) = binned_xor_data();
        let cfg = RandomForestConfig::default();
        let f1 = HistForest::fit(&cols, &labels, &cfg);
        let f2 = HistForest::fit(&cols, &labels, &cfg);
        assert_eq!(f1.importances, f2.importances);
        let sum: f64 = f1.importances.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    /// With lossless binning (small discrete domains) the histogram
    /// forest replays the float forest's RNG stream and split decisions
    /// exactly — the normalized importances are bit-identical.
    #[test]
    fn hist_forest_matches_float_forest_on_lossless_binning() {
        let n = 400usize;
        let a: Vec<u32> = (0..n).map(|i| (i % 3) as u32).collect();
        let x: Vec<f64> = (0..n).map(|i| ((i * 7) % 9) as f64).collect();
        let labels: Vec<bool> = (0..n).map(|i| (a[i] == 1) ^ (x[i] > 3.0)).collect();
        let features = vec![
            FeatureColumn::Categorical(a.clone()),
            FeatureColumn::Numeric(x.clone()),
        ];
        let cols = vec![
            BinnedColumn::from_keys(a.iter().map(|&c| Some(c as u64)), 16),
            BinnedColumn::from_f64(&x, 16),
        ];
        let cfg = RandomForestConfig::default();
        let float = RandomForest::fit(&features, &labels, &cfg);
        let hist = HistForest::fit(&cols, &labels, &cfg);
        assert_eq!(float.importances, hist.importances);
        assert_eq!(float.ranked_features(), hist.ranked_features());
    }
}
