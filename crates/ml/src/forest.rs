//! Random forest = bagged CART trees + mean-decrease-impurity importances.
//!
//! CaJaDE trains a forest to predict whether an APT row belongs to the
//! provenance of output `t1` or `t2` (paper §3.1, citing Breiman 2001) and
//! keeps the λ#sel-attr most relevant attributes for pattern mining.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use crate::dataset::FeatureColumn;
use crate::tree::{DecisionTree, TreeConfig};

/// Forest hyper-parameters.
#[derive(Debug, Clone)]
pub struct RandomForestConfig {
    /// Number of trees.
    pub num_trees: usize,
    /// Per-tree configuration (feature subsampling defaults to √p).
    pub tree: TreeConfig,
    /// Bootstrap sample size as a fraction of the training set.
    pub bootstrap_fraction: f64,
    /// RNG seed (forests are deterministic given the seed).
    pub seed: u64,
}

impl Default for RandomForestConfig {
    fn default() -> Self {
        Self {
            num_trees: 20,
            tree: TreeConfig::default(),
            bootstrap_fraction: 1.0,
            seed: 0xCA1ADE,
        }
    }
}

/// A fitted forest.
#[derive(Debug)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    /// Normalized mean-decrease-impurity importances (sum to 1 unless all
    /// zero).
    pub importances: Vec<f64>,
}

impl RandomForest {
    /// Fits a forest on all rows of `features` / `labels`.
    pub fn fit(
        features: &[FeatureColumn],
        labels: &[bool],
        config: &RandomForestConfig,
    ) -> RandomForest {
        assert!(!features.is_empty(), "need at least one feature");
        let n = labels.len();
        assert!(features.iter().all(|f| f.len() == n), "ragged features");

        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut tree_cfg = config.tree.clone();
        if tree_cfg.features_per_node.is_none() {
            // √p features per node, the standard forest default.
            tree_cfg.features_per_node =
                Some(((features.len() as f64).sqrt().ceil() as usize).max(1));
        }

        let sample_size = ((n as f64) * config.bootstrap_fraction).round().max(1.0) as usize;
        let mut trees = Vec::with_capacity(config.num_trees);
        let mut importances = vec![0.0; features.len()];

        for _ in 0..config.num_trees {
            let rows: Vec<usize> = if n == 0 {
                Vec::new()
            } else {
                (0..sample_size).map(|_| rng.gen_range(0..n)).collect()
            };
            let tree = DecisionTree::fit(features, labels, &rows, &tree_cfg, &mut rng);
            for (imp, t) in importances.iter_mut().zip(&tree.importances) {
                *imp += t;
            }
            trees.push(tree);
        }

        let total: f64 = importances.iter().sum();
        if total > 0.0 {
            for imp in &mut importances {
                *imp /= total;
            }
        }
        RandomForest { trees, importances }
    }

    /// Mean predicted probability of the positive class.
    pub fn predict_proba(&self, features: &[FeatureColumn], row: usize) -> f64 {
        if self.trees.is_empty() {
            return 0.5;
        }
        self.trees
            .iter()
            .map(|t| t.predict_proba(features, row))
            .sum::<f64>()
            / self.trees.len() as f64
    }

    /// Feature indices sorted by decreasing importance (ties broken by
    /// index for determinism).
    pub fn ranked_features(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.importances.len()).collect();
        idx.sort_by(|&a, &b| {
            self.importances[b]
                .partial_cmp(&self.importances[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> (Vec<FeatureColumn>, Vec<bool>) {
        // y = (a XOR b); c is noise. A single stump cannot learn XOR but a
        // depth-2 forest can.
        let n = 400;
        let a: Vec<u32> = (0..n).map(|i| (i % 2) as u32).collect();
        let b: Vec<u32> = (0..n).map(|i| ((i / 2) % 2) as u32).collect();
        let c: Vec<f64> = (0..n).map(|i| ((i * 37) % 100) as f64).collect();
        let labels: Vec<bool> = a.iter().zip(&b).map(|(&x, &y)| (x ^ y) == 1).collect();
        (
            vec![
                FeatureColumn::Categorical(a),
                FeatureColumn::Categorical(b),
                FeatureColumn::Numeric(c),
            ],
            labels,
        )
    }

    #[test]
    fn forest_learns_xor_and_ranks_noise_last() {
        let (features, labels) = xor_data();
        let forest = RandomForest::fit(&features, &labels, &RandomForestConfig::default());
        let correct = (0..labels.len())
            .filter(|&r| (forest.predict_proba(&features, r) > 0.5) == labels[r])
            .count();
        assert!(correct as f64 / labels.len() as f64 > 0.9, "acc {correct}");
        let ranked = forest.ranked_features();
        assert_eq!(ranked[2], 2, "noise feature ranked last: {ranked:?}");
    }

    #[test]
    fn importances_normalized() {
        let (features, labels) = xor_data();
        let forest = RandomForest::fit(&features, &labels, &RandomForestConfig::default());
        let sum: f64 = forest.importances.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(forest.importances.iter().all(|&i| i >= 0.0));
    }

    #[test]
    fn deterministic_given_seed() {
        let (features, labels) = xor_data();
        let cfg = RandomForestConfig::default();
        let f1 = RandomForest::fit(&features, &labels, &cfg);
        let f2 = RandomForest::fit(&features, &labels, &cfg);
        assert_eq!(f1.importances, f2.importances);
    }

    #[test]
    fn constant_labels_give_uninformative_forest() {
        let features = vec![FeatureColumn::Numeric((0..50).map(|i| i as f64).collect())];
        let labels = vec![true; 50];
        let forest = RandomForest::fit(&features, &labels, &RandomForestConfig::default());
        // No split ever helps; importances all zero.
        assert!(forest.importances.iter().all(|&i| i == 0.0));
        assert!(forest.predict_proba(&features, 0) > 0.99);
    }
}
