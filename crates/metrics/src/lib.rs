//! # cajade-metrics
//!
//! Ranking-quality metrics used throughout the paper's evaluation:
//!
//! * [`mod@ndcg`] — normalized discounted cumulative gain \[Järvelin &
//!   Kekäläinen 2002\], the sample-quality metric of Fig. 10f and Table 9,
//! * [`kendall_tau_distance`] — pairwise ranking error \[Kendall 1938\]
//!   used in Table 9,
//! * [`top_k_overlap`] — the "match" metric of Fig. 10b–e (how many of the
//!   ground-truth top-10 patterns appear in the sampled top-10),
//! * small summary-statistics helpers for the harness tables.

#![warn(missing_docs)]

pub mod ndcg;
pub mod rank;
pub mod stats;

pub use ndcg::{dcg, ndcg, ndcg_at_k};
pub use rank::{kendall_tau_distance, kendall_tau_pairs, top_k_overlap};
pub use stats::{mean, population_stddev, sample_stddev};
