//! Normalized discounted cumulative gain.
//!
//! The paper uses NDCG (citing Järvelin & Kekäläinen) to compare the
//! ranking of top patterns produced with sampling against the ranking
//! produced on the full data (Fig. 10f) and to compare metric-based
//! rankings against user ratings (Table 9).

/// Discounted cumulative gain of `gains` in their given order:
/// `Σ gain_i / log2(i + 2)`.
pub fn dcg(gains: &[f64]) -> f64 {
    gains
        .iter()
        .enumerate()
        .map(|(i, g)| g / ((i as f64) + 2.0).log2())
        .sum()
}

/// NDCG of a ranking. `gains` are the true relevance values in *predicted*
/// rank order; the ideal ordering is the same multiset sorted descending.
/// Returns 1.0 for empty input (a vacuous ranking is perfect) and clamps
/// tiny floating-point overshoot. NaN gains sort deterministically
/// under `total_cmp` instead of poisoning the ideal order.
pub fn ndcg(gains: &[f64]) -> f64 {
    if gains.is_empty() {
        return 1.0;
    }
    let mut ideal = gains.to_vec();
    ideal.sort_by(|a, b| b.total_cmp(a));
    let idcg = dcg(&ideal);
    if idcg <= 0.0 {
        return 1.0; // all-zero relevance: every ranking is equally good
    }
    (dcg(gains) / idcg).clamp(0.0, 1.0)
}

/// NDCG@k: truncates both the predicted and the ideal ranking to `k`.
pub fn ndcg_at_k(gains: &[f64], k: usize) -> f64 {
    if gains.is_empty() || k == 0 {
        return 1.0;
    }
    let cut = k.min(gains.len());
    let mut ideal = gains.to_vec();
    ideal.sort_by(|a, b| b.total_cmp(a));
    let idcg = dcg(&ideal[..cut]);
    if idcg <= 0.0 {
        return 1.0;
    }
    (dcg(&gains[..cut]) / idcg).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_ranking_is_one() {
        assert!((ndcg(&[3.0, 2.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reversed_ranking_is_less_than_one() {
        let v = ndcg(&[1.0, 2.0, 3.0]);
        assert!(v < 1.0 && v > 0.0);
    }

    #[test]
    fn known_value() {
        // gains in predicted order [1, 3]: DCG = 1/log2(2) + 3/log2(3)
        // ideal [3, 1]: IDCG = 3/log2(2) + 1/log2(3)
        let dcg_v = 1.0 / 2f64.log2() + 3.0 / 3f64.log2();
        let idcg_v = 3.0 / 2f64.log2() + 1.0 / 3f64.log2();
        assert!((ndcg(&[1.0, 3.0]) - dcg_v / idcg_v).abs() < 1e-12);
    }

    #[test]
    fn empty_and_zero_gains() {
        assert_eq!(ndcg(&[]), 1.0);
        assert_eq!(ndcg(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn ndcg_at_k_truncates() {
        // Predicted [0, 3, 3]: at k=1 the top predicted item has gain 0.
        assert_eq!(ndcg_at_k(&[0.0, 3.0, 3.0], 1), 0.0);
        assert!(ndcg_at_k(&[0.0, 3.0, 3.0], 3) > 0.0);
    }

    proptest! {
        /// NDCG is always within [0, 1] for non-negative gains.
        #[test]
        fn prop_ndcg_bounds(gains in proptest::collection::vec(0.0f64..100.0, 0..32)) {
            let v = ndcg(&gains);
            prop_assert!((0.0..=1.0).contains(&v));
        }

        /// Sorting gains descending always yields NDCG == 1.
        #[test]
        fn prop_sorted_is_perfect(mut gains in proptest::collection::vec(0.0f64..100.0, 1..32)) {
            gains.sort_by(|a, b| b.total_cmp(a));
            prop_assert!((ndcg(&gains) - 1.0).abs() < 1e-9);
        }
    }

    /// A NaN gain must not panic the metric (the pre-`total_cmp` sort
    /// called `partial_cmp(..).unwrap()` here) and must rank
    /// deterministically: two calls see the same ideal order.
    #[test]
    fn nan_gain_does_not_panic_and_is_deterministic() {
        let gains = [1.0, f64::NAN, 3.0, 2.0];
        let a = ndcg(&gains);
        let b = ndcg(&gains);
        // Identical bits in, identical bits out — NaN included.
        assert_eq!(a.to_bits(), b.to_bits());
        assert_eq!(
            ndcg_at_k(&gains, 2).to_bits(),
            ndcg_at_k(&gains, 2).to_bits()
        );
        // All-NaN input is the degenerate extreme; still no panic.
        let _ = ndcg(&[f64::NAN, f64::NAN]);
    }
}
