//! Summary statistics for the harness tables (e.g. Table 8's averages and
//! standard deviations of user ratings).

/// Arithmetic mean; 0.0 for empty input.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (n−1 denominator, as in the paper's Table 8);
/// 0.0 when fewer than two samples.
pub fn sample_stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// Population standard deviation (n denominator).
pub fn population_stddev(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64;
    var.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_known_values() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn stddev_known_values() {
        // Sample stddev of {2, 4, 4, 4, 5, 5, 7, 9} is ~2.138; population 2.0.
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((population_stddev(&xs) - 2.0).abs() < 1e-12);
        assert!((sample_stddev(&xs) - 2.1380899353).abs() < 1e-9);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(sample_stddev(&[5.0]), 0.0);
        assert_eq!(population_stddev(&[]), 0.0);
    }
}
