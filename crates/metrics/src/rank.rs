//! Rank-comparison utilities: Kendall-tau distance and top-k overlap.

/// Number of discordant pairs between two score vectors over the same items:
/// pairs `(i, j)` where `a` and `b` order the items oppositely. Ties in
/// either vector are not counted as discordant (Kendall tau-a style), which
/// matches how the paper treats equal user ratings.
pub fn kendall_tau_pairs(a: &[f64], b: &[f64]) -> usize {
    assert_eq!(a.len(), b.len(), "score vectors must align");
    let n = a.len();
    let mut discordant = 0;
    for i in 0..n {
        for j in (i + 1)..n {
            let da = a[i] - a[j];
            let db = b[i] - b[j];
            if da * db < 0.0 {
                discordant += 1;
            }
        }
    }
    discordant
}

/// Normalized Kendall-tau rank distance in `[0, 1]`: discordant pairs
/// divided by total pairs. 0 = identical order, 1 = exactly reversed.
pub fn kendall_tau_distance(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len();
    if n < 2 {
        return 0.0;
    }
    let total = n * (n - 1) / 2;
    kendall_tau_pairs(a, b) as f64 / total as f64
}

/// How many of the first `k` items of `truth` appear among the first `k`
/// items of `predicted` (the "match" count of Fig. 10b–e). Items are
/// compared by an id.
pub fn top_k_overlap<T: PartialEq>(truth: &[T], predicted: &[T], k: usize) -> usize {
    let tk = &truth[..k.min(truth.len())];
    let pk = &predicted[..k.min(predicted.len())];
    tk.iter().filter(|t| pk.contains(t)).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identical_orders_have_zero_distance() {
        let a = [3.0, 2.0, 1.0];
        assert_eq!(kendall_tau_distance(&a, &a), 0.0);
    }

    #[test]
    fn reversed_orders_have_distance_one() {
        let a = [3.0, 2.0, 1.0];
        let b = [1.0, 2.0, 3.0];
        assert_eq!(kendall_tau_distance(&a, &b), 1.0);
    }

    #[test]
    fn single_swap() {
        // Items scored (a): 1st, 2nd, 3rd. (b) swaps the last two.
        let a = [3.0, 2.0, 1.0];
        let b = [3.0, 1.0, 2.0];
        assert_eq!(kendall_tau_pairs(&a, &b), 1);
        assert!((kendall_tau_distance(&a, &b) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn ties_are_not_discordant() {
        let a = [1.0, 1.0];
        let b = [2.0, 1.0];
        assert_eq!(kendall_tau_pairs(&a, &b), 0);
    }

    #[test]
    fn degenerate_lengths() {
        assert_eq!(kendall_tau_distance(&[], &[]), 0.0);
        assert_eq!(kendall_tau_distance(&[1.0], &[2.0]), 0.0);
    }

    #[test]
    fn overlap_counts_membership() {
        let truth = ["p1", "p2", "p3", "p4"];
        let pred = ["p3", "p9", "p1", "p8"];
        assert_eq!(top_k_overlap(&truth, &pred, 3), 2); // p1 and p3
        assert_eq!(top_k_overlap(&truth, &pred, 10), 2);
        assert_eq!(top_k_overlap(&truth, &pred, 0), 0);
    }

    proptest! {
        /// Distance is symmetric and bounded.
        #[test]
        fn prop_symmetric_bounded(
            a in proptest::collection::vec(-10.0f64..10.0, 2..16),
        ) {
            let b: Vec<f64> = a.iter().rev().copied().collect();
            let d1 = kendall_tau_distance(&a, &b);
            let d2 = kendall_tau_distance(&b, &a);
            prop_assert!((d1 - d2).abs() < 1e-12);
            prop_assert!((0.0..=1.0).contains(&d1));
        }

        /// Distance to itself is always zero.
        #[test]
        fn prop_self_distance_zero(a in proptest::collection::vec(-10.0f64..10.0, 0..16)) {
            prop_assert_eq!(kendall_tau_distance(&a, &a), 0.0);
        }
    }
}
