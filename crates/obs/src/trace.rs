//! Structured tracing spans.
//!
//! A span measures one named phase of work. Creating one returns an RAII
//! [`SpanGuard`]; dropping the guard records the span. Span records carry
//! monotonically assigned trace/span ids and a parent pointer taken from
//! a **thread-local span stack**, so nested guards form a tree without
//! any plumbing at the call sites:
//!
//! ```
//! let _ask = cajade_obs::span("ask");
//! {
//!     let _prov = cajade_obs::span("provenance"); // parent: "ask"
//! }
//! ```
//!
//! Records go to two (independent, optional) destinations:
//!
//! * a per-request [`Collector`], installed for a scope with
//!   [`Collector::with`] — this is how `ask { trace: true }` assembles
//!   its span tree, including across worker threads (the parallel stages
//!   re-install the collector under an explicit parent id);
//! * a process-global [`TraceSink`] (e.g. [`JsonLinesSink`]), installed
//!   by [`set_sink`] and gated by a [`Level`] filter — the
//!   `CAJADE_TRACE` env var wires this up via
//!   [`init_from_env`](crate::init_from_env).
//!
//! When neither destination is active, [`span`] returns an inert guard
//! after two relaxed loads (one atomic, one thread-local) — the
//! disabled path costs nanoseconds and allocates nothing, which is what
//! lets the pipeline stay instrumented permanently.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

/// Verbosity filter for the global sink. Collectors ignore the level —
/// an explicitly requested trace always captures every span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// No sink output.
    Off = 0,
    /// Request- and stage-level spans ([`span`]).
    Spans = 1,
    /// Adds per-phase spans ([`span_detail`]) and events.
    Detail = 2,
}

/// One finished span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Trace id — shared by every span of one request (or one thread's
    /// ambient top-level span when no collector is installed).
    pub trace: u64,
    /// Span id, unique process-wide.
    pub id: u64,
    /// Parent span id (`None` for a root span).
    pub parent: Option<u64>,
    /// Static span name (see the taxonomy in `docs/OBSERVABILITY.md`).
    pub name: &'static str,
    /// Start offset in µs — relative to the collector's creation for
    /// collected spans, to process start for sink-emitted spans.
    pub start_us: u64,
    /// Wall-clock duration in µs.
    pub wall_us: u64,
    /// Bytes allocated on the span's thread while it was open. Zero
    /// unless the binary installed [`TrackingAlloc`](crate::TrackingAlloc);
    /// worker-thread allocations land on the workers' own spans.
    pub alloc_bytes: u64,
    /// Peak live-byte growth on the span's thread over its starting
    /// level (the span's own high-water mark). Zero without the
    /// tracking allocator.
    pub peak_bytes: u64,
}

impl SpanRecord {
    /// Renders the record as one JSON line (no trailing newline). Names
    /// are static identifiers, so no escaping is required.
    pub fn render_json(&self) -> String {
        let parent = match self.parent {
            Some(p) => p.to_string(),
            None => "null".to_string(),
        };
        format!(
            "{{\"trace\":{},\"span\":{},\"parent\":{},\"name\":\"{}\",\"start_us\":{},\"wall_us\":{},\"alloc_bytes\":{},\"peak_bytes\":{}}}",
            self.trace,
            self.id,
            parent,
            self.name,
            self.start_us,
            self.wall_us,
            self.alloc_bytes,
            self.peak_bytes
        )
    }
}

/// A pluggable destination for sink-emitted span records.
pub trait TraceSink: Send + Sync {
    /// Called once per finished span (start offsets are relative to
    /// process start).
    fn record(&self, rec: &SpanRecord);
}

/// JSON-lines sink over any writer (stderr by default).
pub struct JsonLinesSink<W: std::io::Write + Send> {
    out: Mutex<W>,
}

impl JsonLinesSink<std::io::Stderr> {
    /// A sink writing one JSON line per span to stderr.
    pub fn stderr() -> Self {
        JsonLinesSink {
            out: Mutex::new(std::io::stderr()),
        }
    }
}

impl<W: std::io::Write + Send> JsonLinesSink<W> {
    /// A sink writing to `out`.
    pub fn new(out: W) -> Self {
        JsonLinesSink {
            out: Mutex::new(out),
        }
    }
}

impl<W: std::io::Write + Send> TraceSink for JsonLinesSink<W> {
    fn record(&self, rec: &SpanRecord) {
        let mut out = self.out.lock().unwrap_or_else(|e| e.into_inner());
        let _ = writeln!(out, "{}", rec.render_json());
    }
}

static NEXT_ID: AtomicU64 = AtomicU64::new(1);
/// `Level` of the installed sink, as u8 for a relaxed fast-path load.
static SINK_LEVEL: AtomicU8 = AtomicU8::new(0);
static SINK: RwLock<Option<Arc<dyn TraceSink>>> = RwLock::new(None);

fn process_epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Installs the global sink at `level` (replacing any previous sink).
pub fn set_sink(sink: Arc<dyn TraceSink>, level: Level) {
    process_epoch(); // pin t=0 before the first record
    *SINK.write().unwrap_or_else(|e| e.into_inner()) = Some(sink);
    SINK_LEVEL.store(level as u8, Ordering::Release);
}

/// Removes the global sink; span guards return to the inert fast path.
pub fn clear_sink() {
    SINK_LEVEL.store(0, Ordering::Release);
    *SINK.write().unwrap_or_else(|e| e.into_inner()) = None;
}

#[derive(Default)]
struct TlsState {
    collector: Option<Arc<Collector>>,
    /// Open span ids, innermost last. A collector scope seeds the bottom
    /// with its parent id; guards only pop what they pushed.
    stack: Vec<u64>,
    /// Ambient trace id for sink-only tracing (assigned when the stack
    /// goes empty → non-empty).
    trace_id: u64,
}

thread_local! {
    /// Fast flag: true while a collector is installed on this thread.
    static COLLECTING: Cell<bool> = const { Cell::new(false) };
    static TLS: RefCell<TlsState> = RefCell::new(TlsState::default());
}

#[inline]
fn enabled(level: Level) -> bool {
    SINK_LEVEL.load(Ordering::Relaxed) >= level as u8 || COLLECTING.with(Cell::get)
}

/// Opens a request/stage-level span. Inert (no allocation, no clock
/// read) unless a sink at [`Level::Spans`]+ or a collector is active.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled(Level::Spans) {
        return SpanGuard {
            active: None,
            _not_send: std::marker::PhantomData,
        };
    }
    begin(name, Level::Spans)
}

/// Opens a per-phase span, emitted to the sink only at [`Level::Detail`]
/// (collectors always capture it).
#[inline]
pub fn span_detail(name: &'static str) -> SpanGuard {
    if !enabled(Level::Detail) {
        return SpanGuard {
            active: None,
            _not_send: std::marker::PhantomData,
        };
    }
    begin(name, Level::Detail)
}

/// Records an instantaneous (zero-duration) event at the current stack
/// position. Same gating as [`span_detail`].
pub fn event(name: &'static str) {
    if !enabled(Level::Detail) {
        return;
    }
    let g = begin(name, Level::Detail);
    drop(g);
}

fn begin(name: &'static str, level: Level) -> SpanGuard {
    let (trace, parent) = TLS.with(|tls| {
        let mut tls = tls.borrow_mut();
        let trace = match &tls.collector {
            Some(c) => c.trace_id,
            None => {
                if tls.stack.is_empty() {
                    tls.trace_id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
                }
                tls.trace_id
            }
        };
        (trace, tls.stack.last().copied())
    });
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    TLS.with(|tls| tls.borrow_mut().stack.push(id));
    SpanGuard {
        active: Some(ActiveSpan {
            trace,
            id,
            parent,
            name,
            level,
            start: Instant::now(),
            mem: crate::alloc::span_mem_enter(),
        }),
        _not_send: std::marker::PhantomData,
    }
}

struct ActiveSpan {
    trace: u64,
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    level: Level,
    start: Instant,
    mem: crate::alloc::SpanMem,
}

/// RAII guard for an open span; records on drop. Must stay on the thread
/// that created it (it owns a slot in that thread's span stack).
pub struct SpanGuard {
    active: Option<ActiveSpan>,
    _not_send: std::marker::PhantomData<*const ()>,
}

impl SpanGuard {
    /// The span id, for parenting work that hops threads (the parallel
    /// pipeline stages pass this to [`Collector::with`]). `None` when
    /// tracing is disabled.
    pub fn id(&self) -> Option<u64> {
        self.active.as_ref().map(|a| a.id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(a) = self.active.take() else { return };
        let wall_us = saturating_us(a.start.elapsed());
        let (alloc_bytes, peak_bytes) = crate::alloc::span_mem_exit(a.mem);
        let collector = TLS.with(|tls| {
            let mut tls = tls.borrow_mut();
            // LIFO in the common case; defensive removal otherwise so a
            // leaked-out-of-order guard cannot corrupt sibling parents.
            match tls.stack.last() {
                Some(&top) if top == a.id => {
                    tls.stack.pop();
                }
                _ => tls.stack.retain(|&id| id != a.id),
            }
            tls.collector.clone()
        });
        if let Some(c) = collector {
            c.push(SpanRecord {
                trace: a.trace,
                id: a.id,
                parent: a.parent,
                name: a.name,
                start_us: saturating_us(a.start.saturating_duration_since(c.t0)),
                wall_us,
                alloc_bytes,
                peak_bytes,
            });
        }
        if SINK_LEVEL.load(Ordering::Relaxed) >= a.level as u8 {
            if let Some(sink) = SINK.read().unwrap_or_else(|e| e.into_inner()).as_ref() {
                sink.record(&SpanRecord {
                    trace: a.trace,
                    id: a.id,
                    parent: a.parent,
                    name: a.name,
                    start_us: saturating_us(a.start.saturating_duration_since(process_epoch())),
                    wall_us,
                    alloc_bytes,
                    peak_bytes,
                });
            }
        }
    }
}

fn saturating_us(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// Gathers one request's spans into a tree (flat list with parent
/// pointers). Shareable across the worker threads of a parallel stage.
pub struct Collector {
    trace_id: u64,
    t0: Instant,
    spans: Mutex<Vec<SpanRecord>>,
}

impl Collector {
    /// A fresh collector with its own trace id.
    pub fn new() -> Arc<Collector> {
        Arc::new(Collector {
            trace_id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            t0: Instant::now(),
            spans: Mutex::new(Vec::new()),
        })
    }

    /// The trace id every collected span carries.
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    fn push(&self, rec: SpanRecord) {
        self.spans
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(rec);
    }

    /// Runs `f` with this collector installed on the current thread and
    /// `parent` seeding the span stack. Restores the thread's previous
    /// tracing state on exit; safe to nest and to call on worker threads.
    pub fn with<R>(self: &Arc<Self>, parent: Option<u64>, f: impl FnOnce() -> R) -> R {
        let prev = TLS.with(|tls| {
            let mut tls = tls.borrow_mut();
            std::mem::replace(
                &mut *tls,
                TlsState {
                    collector: Some(Arc::clone(self)),
                    stack: parent.into_iter().collect(),
                    trace_id: self.trace_id,
                },
            )
        });
        let prev_flag = COLLECTING.with(|c| c.replace(true));
        // Restore on unwind too: a panicking ask must not leave a dangling
        // collector on a pooled worker thread.
        struct Restore {
            prev: Option<TlsState>,
            prev_flag: bool,
        }
        impl Drop for Restore {
            fn drop(&mut self) {
                let prev = self.prev.take().expect("restore once");
                TLS.with(|tls| *tls.borrow_mut() = prev);
                COLLECTING.with(|c| c.set(self.prev_flag));
            }
        }
        let _restore = Restore {
            prev: Some(prev),
            prev_flag,
        };
        f()
    }

    /// Drains the collected spans, ordered by start offset (ties broken
    /// by span id, i.e. creation order).
    pub fn finish(&self) -> Vec<SpanRecord> {
        let mut spans = std::mem::take(&mut *self.spans.lock().unwrap_or_else(|e| e.into_inner()));
        spans.sort_by_key(|r| (r.start_us, r.id));
        spans
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_are_inert() {
        let g = span("noop");
        assert_eq!(g.id(), None);
        drop(g);
        TLS.with(|tls| assert!(tls.borrow().stack.is_empty()));
    }

    /// Satellite: the disabled path must stay nanosecond-scale — the
    /// whole point of permanent instrumentation. Bound is deliberately
    /// loose (2 µs/span in debug mode under CI noise); release-mode
    /// reality is a few ns.
    #[test]
    fn disabled_span_overhead_is_negligible() {
        let n = 200_000u64;
        let t0 = Instant::now();
        for _ in 0..n {
            let _g = span("overhead_probe");
        }
        let per_span = t0.elapsed().as_nanos() as u64 / n;
        assert!(
            per_span < 2_000,
            "disabled span cost {per_span} ns — fast path regressed"
        );
    }

    #[test]
    fn collector_builds_a_parented_tree() {
        let c = Collector::new();
        c.with(None, || {
            let root = span("root");
            let root_id = root.id().unwrap();
            {
                let child = span_detail("child");
                assert_eq!(
                    TLS.with(|t| t.borrow().stack.clone()),
                    vec![root_id, child.id().unwrap()]
                );
                let _grand = span("grandchild");
            }
            let _sibling = span("sibling");
        });
        let spans = c.finish();
        let names: Vec<&str> = spans.iter().map(|r| r.name).collect();
        assert_eq!(names.len(), 4);
        let by_name = |n: &str| spans.iter().find(|r| r.name == n).unwrap();
        let root = by_name("root");
        assert_eq!(root.parent, None);
        assert_eq!(by_name("child").parent, Some(root.id));
        assert_eq!(by_name("grandchild").parent, Some(by_name("child").id));
        assert_eq!(by_name("sibling").parent, Some(root.id));
        assert!(spans.iter().all(|r| r.trace == c.trace_id()));
        // Root starts first and (being the enclosing scope) outlasts its
        // children.
        assert!(root.wall_us >= by_name("child").wall_us);
    }

    #[test]
    fn collector_spans_cross_threads_via_explicit_parent() {
        let c = Collector::new();
        let parent_id = c.with(None, || {
            let stage = span("stage");
            let id = stage.id().unwrap();
            std::thread::scope(|s| {
                for _ in 0..2 {
                    let c = Arc::clone(&c);
                    s.spawn(move || {
                        c.with(Some(id), || {
                            let _w = span("worker");
                        })
                    });
                }
            });
            id
        });
        let spans = c.finish();
        let workers: Vec<_> = spans.iter().filter(|r| r.name == "worker").collect();
        assert_eq!(workers.len(), 2);
        assert!(workers.iter().all(|r| r.parent == Some(parent_id)));
    }

    #[test]
    fn collector_restores_previous_thread_state() {
        let outer = Collector::new();
        let inner = Collector::new();
        outer.with(None, || {
            let _a = span("outer_span");
            inner.with(None, || {
                let _b = span("inner_span");
            });
            let _c = span("outer_span_2");
        });
        assert_eq!(inner.finish().len(), 1);
        assert_eq!(outer.finish().len(), 2);
        assert!(!COLLECTING.with(Cell::get));
    }

    #[test]
    fn json_line_rendering() {
        let rec = SpanRecord {
            trace: 7,
            id: 9,
            parent: None,
            name: "ask",
            start_us: 12,
            wall_us: 34,
            alloc_bytes: 256,
            peak_bytes: 128,
        };
        assert_eq!(
            rec.render_json(),
            r#"{"trace":7,"span":9,"parent":null,"name":"ask","start_us":12,"wall_us":34,"alloc_bytes":256,"peak_bytes":128}"#
        );
        let rec = SpanRecord {
            parent: Some(9),
            ..rec
        };
        assert!(rec.render_json().contains("\"parent\":9"));
    }

    /// With the tracking allocator installed (see lib.rs), collected
    /// spans carry their thread's allocation delta.
    #[cfg(feature = "alloc-track")]
    #[test]
    fn collected_spans_carry_alloc_deltas() {
        let c = Collector::new();
        c.with(None, || {
            let _s = span("alloc_probe");
            let v = vec![0u8; 1 << 16];
            std::hint::black_box(&v);
        });
        let spans = c.finish();
        let probe = spans.iter().find(|r| r.name == "alloc_probe").unwrap();
        assert!(
            probe.alloc_bytes >= 1 << 16,
            "span alloc delta missing: {probe:?}"
        );
        assert!(probe.peak_bytes >= 1 << 16, "span peak missing: {probe:?}");
    }

    #[test]
    fn event_records_zero_wall_span() {
        let c = Collector::new();
        c.with(None, || {
            let _root = span("root");
            event("tick");
        });
        let spans = c.finish();
        let tick = spans.iter().find(|r| r.name == "tick").unwrap();
        assert!(tick.parent.is_some());
        assert!(tick.wall_us < 1_000);
    }
}
