//! Heap attribution: a tracking [`GlobalAlloc`] wrapper plus scoped
//! byte accounting.
//!
//! `VmHWM` (see [`crate::rss`]) says *that* the process bloats; this
//! module says *where*. Binaries opt in by installing [`TrackingAlloc`]:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: cajade_obs::alloc::TrackingAlloc = cajade_obs::alloc::TrackingAlloc;
//! ```
//!
//! Every allocation and free then updates three ledgers:
//!
//! * **global** — cumulative bytes/blocks allocated and freed, current
//!   live bytes, and a peak-live watermark ([`heap_stats`],
//!   resettable per bench point via [`reset_peak`]);
//! * **thread-local** — the same counters per thread, which is what
//!   gives traced spans their `alloc_bytes`/`peak_bytes` deltas for
//!   free (the span guard samples on enter and exit);
//! * **scoped** — an [`AllocScope::enter`] RAII guard attributes
//!   allocations to a named scope ("materialize", "cache.apt", …).
//!   Scopes nest like spans and attribution is *inclusive*: bytes
//!   allocated under `refine_bfs` inside `mine` count toward both, the
//!   same way a nested span's wall time is inside its parent's.
//!
//! Attribution is at alloc/free time against the scope chain installed
//! on the *allocating thread*. Parallel stages fan out to worker
//! threads, so — exactly like [`Collector::with`](crate::Collector::with)
//! and [`Budget::install`](crate::Budget::install) — the scope chain
//! must hop explicitly: capture [`current_scope`] before the fan-out
//! and [`ScopeHandle::install`] it on each worker.
//!
//! The allocator's hooks never allocate, never lock, and survive TLS
//! teardown (`try_with`); the un-scoped hot path is a handful of
//! relaxed atomic ops plus two `Cell` updates, pinned by an overhead
//! test. Building `cajade-obs` with `--no-default-features` (dropping
//! the `alloc-track` feature) compiles the whole module down to a
//! pass-through to the system allocator.

use crate::registry::Registry;
use std::alloc::{GlobalAlloc, Layout, System};

#[cfg(feature = "alloc-track")]
use std::cell::Cell;
#[cfg(feature = "alloc-track")]
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
#[cfg(feature = "alloc-track")]
use std::sync::Mutex;

// ---------------------------------------------------------------------------
// The allocator
// ---------------------------------------------------------------------------

/// A [`GlobalAlloc`] forwarding to [`System`] while maintaining the
/// global / thread-local / scoped ledgers. With the `alloc-track`
/// feature disabled it is a pure pass-through.
pub struct TrackingAlloc;

// SAFETY: every hook delegates the actual memory operation to `System`
// with unmodified arguments and returns its pointer untouched, so
// `System`'s `GlobalAlloc` guarantees carry over; the ledger updates
// never allocate, never lock on the hot path, and never dereference the
// managed pointers.
unsafe impl GlobalAlloc for TrackingAlloc {
    // SAFETY: forwards `layout` unchanged to `System.alloc` under the
    // caller's `GlobalAlloc::alloc` contract; bookkeeping runs only on
    // success and does not touch the returned block.
    #[inline]
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        #[cfg(feature = "alloc-track")]
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    // SAFETY: same delegation as `alloc`, via `System.alloc_zeroed`.
    #[inline]
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        #[cfg(feature = "alloc-track")]
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    // SAFETY: the caller guarantees `ptr`/`layout` describe a block
    // previously returned by this allocator; both are passed straight
    // through to `System.dealloc`.
    #[inline]
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        #[cfg(feature = "alloc-track")]
        on_dealloc(layout.size());
    }

    // SAFETY: `ptr`/`layout`/`new_size` are forwarded unchanged to
    // `System.realloc` under the caller's contract; on success the old
    // size is retired and the new size recorded, without dereferencing
    // either block.
    #[inline]
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        #[cfg(feature = "alloc-track")]
        if !p.is_null() {
            on_dealloc(layout.size());
            on_alloc(new_size);
        }
        p
    }
}

// ---------------------------------------------------------------------------
// Ledgers (feature-gated internals)
// ---------------------------------------------------------------------------

#[cfg(feature = "alloc-track")]
static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);
#[cfg(feature = "alloc-track")]
static FREED_BYTES: AtomicU64 = AtomicU64::new(0);
#[cfg(feature = "alloc-track")]
static ALLOCATED_BLOCKS: AtomicU64 = AtomicU64::new(0);
#[cfg(feature = "alloc-track")]
static FREED_BLOCKS: AtomicU64 = AtomicU64::new(0);
#[cfg(feature = "alloc-track")]
static LIVE_BYTES: AtomicI64 = AtomicI64::new(0);
#[cfg(feature = "alloc-track")]
static PEAK_LIVE_BYTES: AtomicI64 = AtomicI64::new(0);

/// Per-scope ledger. Instances are interned by name in [`SCOPES`] and
/// leaked (the taxonomy is a small fixed set), so the allocator hook can
/// hold `&'static` references without refcounting.
#[cfg(feature = "alloc-track")]
struct ScopeStats {
    name: &'static str,
    allocated: AtomicU64,
    freed: AtomicU64,
    blocks_allocated: AtomicU64,
    blocks_freed: AtomicU64,
    net: AtomicI64,
    peak_net: AtomicI64,
}

#[cfg(feature = "alloc-track")]
static SCOPES: Mutex<Vec<&'static ScopeStats>> = Mutex::new(Vec::new());

/// One link of the per-thread scope chain, innermost at the head. Nodes
/// are boxed so their address survives guard moves; the chain is only
/// ever traversed by the owning thread.
#[cfg(feature = "alloc-track")]
struct ScopeNode {
    stats: &'static ScopeStats,
    parent: *const ScopeNode,
}

#[cfg(feature = "alloc-track")]
#[derive(Clone, Copy, Default)]
struct ThreadMem {
    allocated: u64,
    freed: u64,
    live: i64,
    peak: i64,
}

#[cfg(feature = "alloc-track")]
thread_local! {
    // Const-initialized `Cell`s: no lazy-init allocation, no destructor,
    // so the allocator hook can touch them from any allocation context.
    static SCOPE_HEAD: Cell<*const ScopeNode> = const { Cell::new(std::ptr::null()) };
    static THREAD_MEM: Cell<ThreadMem> = const {
        Cell::new(ThreadMem { allocated: 0, freed: 0, live: 0, peak: 0 })
    };
}

#[cfg(feature = "alloc-track")]
#[inline]
fn on_alloc(size: usize) {
    let bytes = size as u64;
    let signed = size as i64;
    ALLOCATED_BYTES.fetch_add(bytes, Ordering::Relaxed);
    ALLOCATED_BLOCKS.fetch_add(1, Ordering::Relaxed);
    let live = LIVE_BYTES.fetch_add(signed, Ordering::Relaxed) + signed;
    PEAK_LIVE_BYTES.fetch_max(live, Ordering::Relaxed);
    // try_with: survives TLS teardown during thread exit.
    let _ = THREAD_MEM.try_with(|m| {
        let mut v = m.get();
        v.allocated += bytes;
        v.live += signed;
        if v.live > v.peak {
            v.peak = v.live;
        }
        m.set(v);
    });
    let _ = SCOPE_HEAD.try_with(|h| {
        let mut node = h.get();
        while !node.is_null() {
            // SAFETY: nodes are owned by live `AllocScope`/`install`
            // guards on this same thread; stack discipline keeps every
            // link valid while it is reachable from the head.
            let n = unsafe { &*node };
            n.stats.allocated.fetch_add(bytes, Ordering::Relaxed);
            n.stats.blocks_allocated.fetch_add(1, Ordering::Relaxed);
            let net = n.stats.net.fetch_add(signed, Ordering::Relaxed) + signed;
            n.stats.peak_net.fetch_max(net, Ordering::Relaxed);
            node = n.parent;
        }
    });
}

#[cfg(feature = "alloc-track")]
#[inline]
fn on_dealloc(size: usize) {
    let bytes = size as u64;
    let signed = size as i64;
    FREED_BYTES.fetch_add(bytes, Ordering::Relaxed);
    FREED_BLOCKS.fetch_add(1, Ordering::Relaxed);
    LIVE_BYTES.fetch_sub(signed, Ordering::Relaxed);
    let _ = THREAD_MEM.try_with(|m| {
        let mut v = m.get();
        v.freed += bytes;
        v.live -= signed;
        m.set(v);
    });
    let _ = SCOPE_HEAD.try_with(|h| {
        let mut node = h.get();
        while !node.is_null() {
            // SAFETY: same invariant as in `on_alloc` — every reachable
            // node is owned by a live guard on this thread.
            let n = unsafe { &*node };
            n.stats.freed.fetch_add(bytes, Ordering::Relaxed);
            n.stats.blocks_freed.fetch_add(1, Ordering::Relaxed);
            n.stats.net.fetch_sub(signed, Ordering::Relaxed);
            node = n.parent;
        }
    });
}

/// Looks up (or interns) the ledger for `name`. Names compare by
/// content, so distinct `&'static str`s with equal text share a ledger.
#[cfg(feature = "alloc-track")]
fn stats_for(name: &'static str) -> &'static ScopeStats {
    let mut scopes = SCOPES.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(s) = scopes.iter().find(|s| s.name == name) {
        return s;
    }
    let s: &'static ScopeStats = Box::leak(Box::new(ScopeStats {
        name,
        allocated: AtomicU64::new(0),
        freed: AtomicU64::new(0),
        blocks_allocated: AtomicU64::new(0),
        blocks_freed: AtomicU64::new(0),
        net: AtomicI64::new(0),
        peak_net: AtomicI64::new(0),
    }));
    scopes.push(s);
    s
}

// ---------------------------------------------------------------------------
// Scoped attribution API
// ---------------------------------------------------------------------------

/// RAII guard attributing this thread's allocations to a named scope
/// while alive. Nestable; attribution is inclusive up the chain. Must
/// stay on the thread that created it (like [`SpanGuard`](crate::SpanGuard)).
pub struct AllocScope {
    #[cfg(feature = "alloc-track")]
    node: Box<ScopeNode>,
    _not_send: std::marker::PhantomData<*const ()>,
}

impl AllocScope {
    /// Enters scope `name` on the current thread.
    #[inline]
    pub fn enter(name: &'static str) -> AllocScope {
        #[cfg(feature = "alloc-track")]
        {
            let stats = stats_for(name);
            let parent = SCOPE_HEAD.with(Cell::get);
            let node = Box::new(ScopeNode { stats, parent });
            SCOPE_HEAD.with(|h| h.set(&*node as *const ScopeNode));
            AllocScope {
                node,
                _not_send: std::marker::PhantomData,
            }
        }
        #[cfg(not(feature = "alloc-track"))]
        {
            let _ = name;
            AllocScope {
                _not_send: std::marker::PhantomData,
            }
        }
    }
}

impl Drop for AllocScope {
    fn drop(&mut self) {
        #[cfg(feature = "alloc-track")]
        SCOPE_HEAD.with(|h| {
            // LIFO in the common case; defensive unlink otherwise so an
            // out-of-order drop cannot leave a dangling head.
            let me = &*self.node as *const ScopeNode;
            if h.get() == me {
                h.set(self.node.parent);
            } else {
                let mut node = h.get();
                while !node.is_null() {
                    // SAFETY: reachable nodes belong to still-live
                    // guards on this thread, so the walk reads valid
                    // memory.
                    let n = unsafe { &*node };
                    if n.parent == me {
                        // SAFETY: same-thread chain; splicing past our
                        // node keeps every remaining link owned by a
                        // still-live guard.
                        unsafe {
                            let n_mut = node as *mut ScopeNode;
                            (*n_mut).parent = self.node.parent;
                        }
                        break;
                    }
                    node = n.parent;
                }
            }
        });
    }
}

/// A snapshot of the current thread's scope chain, for re-installing on
/// worker threads across a parallel fan-out. Cheap to clone; an empty
/// handle (no scope active) installs nothing.
#[derive(Clone, Default)]
pub struct ScopeHandle {
    /// Innermost first.
    #[cfg(feature = "alloc-track")]
    chain: Vec<&'static ScopeStats>,
}

/// Captures the scope chain active on the current thread. Pair with
/// [`ScopeHandle::install`] on each worker of a parallel stage, exactly
/// like `Collector::with(parent, ..)` re-parents spans.
pub fn current_scope() -> ScopeHandle {
    #[cfg(feature = "alloc-track")]
    {
        let mut chain = Vec::new();
        SCOPE_HEAD.with(|h| {
            let mut node = h.get();
            while !node.is_null() {
                // SAFETY: the chain is only mutated by this thread and
                // every reachable node is owned by a live guard.
                let n = unsafe { &*node };
                chain.push(n.stats);
                node = n.parent;
            }
        });
        ScopeHandle { chain }
    }
    #[cfg(not(feature = "alloc-track"))]
    ScopeHandle::default()
}

impl ScopeHandle {
    /// Runs `f` with this chain installed on the current thread,
    /// restoring the previous chain on exit (including unwind).
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        #[cfg(feature = "alloc-track")]
        {
            if self.chain.is_empty() {
                return f();
            }
            let prev = SCOPE_HEAD.with(Cell::get);
            // Rebuild outermost → innermost, grafting onto the worker's
            // existing chain (usually empty).
            let mut nodes: Vec<Box<ScopeNode>> = Vec::with_capacity(self.chain.len());
            let mut parent = prev;
            for stats in self.chain.iter().rev() {
                let node = Box::new(ScopeNode { stats, parent });
                parent = &*node as *const ScopeNode;
                nodes.push(node);
            }
            struct Restore {
                prev: *const ScopeNode,
                // The boxes pin each node's address: the chain links via
                // raw pointers, and a Vec<ScopeNode> would move nodes on
                // reallocation while a neighbor still points at them.
                #[allow(clippy::vec_box)]
                _nodes: Vec<Box<ScopeNode>>,
            }
            impl Drop for Restore {
                fn drop(&mut self) {
                    SCOPE_HEAD.with(|h| h.set(self.prev));
                }
            }
            let _restore = Restore {
                prev,
                _nodes: nodes,
            };
            SCOPE_HEAD.with(|h| h.set(parent));
            f()
        }
        #[cfg(not(feature = "alloc-track"))]
        f()
    }
}

// ---------------------------------------------------------------------------
// Span integration (crate-internal)
// ---------------------------------------------------------------------------

/// Thread-memory sample taken when a span opens.
#[derive(Clone, Copy, Default)]
pub(crate) struct SpanMem {
    #[cfg(feature = "alloc-track")]
    allocated0: u64,
    #[cfg(feature = "alloc-track")]
    live0: i64,
    #[cfg(feature = "alloc-track")]
    saved_peak: i64,
}

/// Samples the thread ledger at span start and re-bases the thread peak
/// so the span sees its own high-water mark.
#[inline]
pub(crate) fn span_mem_enter() -> SpanMem {
    #[cfg(feature = "alloc-track")]
    {
        THREAD_MEM
            .try_with(|m| {
                let mut v = m.get();
                let s = SpanMem {
                    allocated0: v.allocated,
                    live0: v.live,
                    saved_peak: v.peak,
                };
                v.peak = v.live;
                m.set(v);
                s
            })
            .unwrap_or_default()
    }
    #[cfg(not(feature = "alloc-track"))]
    SpanMem::default()
}

/// Closes a span's memory window: returns `(alloc_bytes, peak_bytes)` —
/// bytes allocated on this thread during the span, and the span's
/// peak-live growth over its starting live level — and restores the
/// enclosing span's peak watermark.
#[inline]
pub(crate) fn span_mem_exit(s: SpanMem) -> (u64, u64) {
    #[cfg(feature = "alloc-track")]
    {
        THREAD_MEM
            .try_with(|m| {
                let mut v = m.get();
                let alloc_bytes = v.allocated.saturating_sub(s.allocated0);
                let peak_bytes = (v.peak - s.live0).max(0) as u64;
                v.peak = v.peak.max(s.saved_peak);
                m.set(v);
                (alloc_bytes, peak_bytes)
            })
            .unwrap_or((0, 0))
    }
    #[cfg(not(feature = "alloc-track"))]
    {
        let _ = s;
        (0, 0)
    }
}

// ---------------------------------------------------------------------------
// Snapshots, resets, registry mirroring
// ---------------------------------------------------------------------------

/// Global heap ledger at a point in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HeapStats {
    /// Cumulative bytes allocated.
    pub allocated_bytes: u64,
    /// Cumulative bytes freed.
    pub freed_bytes: u64,
    /// Cumulative allocations.
    pub allocated_blocks: u64,
    /// Cumulative frees.
    pub freed_blocks: u64,
    /// Currently live bytes (allocated − freed).
    pub live_bytes: i64,
    /// Peak live bytes since process start or the last [`reset_peak`].
    pub peak_live_bytes: i64,
}

/// Per-scope ledger at a point in time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScopeSnapshot {
    /// Scope name as passed to [`AllocScope::enter`].
    pub name: &'static str,
    /// Cumulative bytes allocated under this scope.
    pub allocated_bytes: u64,
    /// Cumulative bytes freed under this scope.
    pub freed_bytes: u64,
    /// Cumulative allocations under this scope.
    pub allocated_blocks: u64,
    /// Cumulative frees under this scope.
    pub freed_blocks: u64,
    /// Net bytes (allocated − freed under this scope). Negative when a
    /// scope frees more than it allocates (e.g. a drop-heavy phase).
    pub net_bytes: i64,
    /// Peak net bytes since process start or [`reset_scope_peaks`].
    pub peak_net_bytes: i64,
}

/// `true` once [`TrackingAlloc`] has observed at least one allocation —
/// i.e. the binary actually installed it and the `alloc-track` feature
/// is on. All byte surfaces report "tracking disabled" otherwise.
pub fn tracking_active() -> bool {
    #[cfg(feature = "alloc-track")]
    {
        ALLOCATED_BYTES.load(Ordering::Relaxed) > 0
    }
    #[cfg(not(feature = "alloc-track"))]
    false
}

/// The global heap ledger, or `None` when tracking is not active.
pub fn heap_stats() -> Option<HeapStats> {
    #[cfg(feature = "alloc-track")]
    {
        if !tracking_active() {
            return None;
        }
        Some(HeapStats {
            allocated_bytes: ALLOCATED_BYTES.load(Ordering::Relaxed),
            freed_bytes: FREED_BYTES.load(Ordering::Relaxed),
            allocated_blocks: ALLOCATED_BLOCKS.load(Ordering::Relaxed),
            freed_blocks: FREED_BLOCKS.load(Ordering::Relaxed),
            live_bytes: LIVE_BYTES.load(Ordering::Relaxed),
            peak_live_bytes: PEAK_LIVE_BYTES.load(Ordering::Relaxed),
        })
    }
    #[cfg(not(feature = "alloc-track"))]
    None
}

/// Rebases the global peak-live watermark to the current live level
/// (sweep harnesses call this between scale points, mirroring
/// [`reset_peak_rss`](crate::reset_peak_rss)).
pub fn reset_peak() {
    #[cfg(feature = "alloc-track")]
    PEAK_LIVE_BYTES.store(LIVE_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Rebases every scope's peak-net watermark to its current net level.
pub fn reset_scope_peaks() {
    #[cfg(feature = "alloc-track")]
    for s in SCOPES.lock().unwrap_or_else(|e| e.into_inner()).iter() {
        s.peak_net
            .store(s.net.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

/// Snapshots of every scope ever entered, sorted by name.
pub fn scope_snapshots() -> Vec<ScopeSnapshot> {
    #[cfg(feature = "alloc-track")]
    {
        let mut out: Vec<ScopeSnapshot> = SCOPES
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|s| ScopeSnapshot {
                name: s.name,
                allocated_bytes: s.allocated.load(Ordering::Relaxed),
                freed_bytes: s.freed.load(Ordering::Relaxed),
                allocated_blocks: s.blocks_allocated.load(Ordering::Relaxed),
                freed_blocks: s.blocks_freed.load(Ordering::Relaxed),
                net_bytes: s.net.load(Ordering::Relaxed),
                peak_net_bytes: s.peak_net.load(Ordering::Relaxed),
            })
            .collect();
        out.sort_by_key(|s| s.name);
        out
    }
    #[cfg(not(feature = "alloc-track"))]
    Vec::new()
}

/// Snapshot of one scope by name, if it has ever been entered.
pub fn scope_snapshot(name: &str) -> Option<ScopeSnapshot> {
    scope_snapshots().into_iter().find(|s| s.name == name)
}

/// Gauge name for current live heap bytes.
pub const HEAP_LIVE_GAUGE: &str = "heap_live_bytes";
/// Gauge name for the peak-live heap watermark.
pub const HEAP_PEAK_GAUGE: &str = "heap_peak_live_bytes";
/// Gauge name for cumulative allocated heap bytes.
pub const HEAP_ALLOCATED_GAUGE: &str = "heap_allocated_bytes";
/// Gauge name for cumulative freed heap bytes.
pub const HEAP_FREED_GAUGE: &str = "heap_freed_bytes";

/// Mirrors the global ledger and every scope into `registry` gauges:
/// [`HEAP_LIVE_GAUGE`] / [`HEAP_PEAK_GAUGE`] / [`HEAP_ALLOCATED_GAUGE`] /
/// [`HEAP_FREED_GAUGE`] globally, and per scope
/// `mem_scope_<name>_{net,peak,allocated}_bytes` (scope names are
/// sanitized: non-alphanumerics become `_`). When tracking is inactive
/// the gauges are left untouched — absent, never wrong — matching
/// [`record_rss`](crate::record_rss) on platforms without `/proc`.
pub fn record_alloc(registry: &Registry) -> Option<HeapStats> {
    let stats = heap_stats()?;
    registry
        .gauge(HEAP_LIVE_GAUGE)
        .set(stats.live_bytes.max(0) as u64);
    registry
        .gauge(HEAP_PEAK_GAUGE)
        .set(stats.peak_live_bytes.max(0) as u64);
    registry
        .gauge(HEAP_ALLOCATED_GAUGE)
        .set(stats.allocated_bytes);
    registry.gauge(HEAP_FREED_GAUGE).set(stats.freed_bytes);
    for s in scope_snapshots() {
        let base = sanitize(s.name);
        registry
            .gauge(&format!("mem_scope_{base}_net_bytes"))
            .set(s.net_bytes.max(0) as u64);
        registry
            .gauge(&format!("mem_scope_{base}_peak_bytes"))
            .set(s.peak_net_bytes.max(0) as u64);
        registry
            .gauge(&format!("mem_scope_{base}_allocated_bytes"))
            .set(s.allocated_bytes);
    }
    Some(stats)
}

/// Replaces every non-alphanumeric with `_` for metric-name embedding.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    // The obs test binary installs TrackingAlloc (see lib.rs), so the
    // feature-gated tests below observe real attribution.

    /// The un-scoped tracked path (and, under `--no-default-features`,
    /// the pass-through path) must stay at a few atomic ops. Bound is
    /// deliberately loose for debug builds under CI noise; release-mode
    /// reality is tens of ns per alloc/free pair.
    #[test]
    fn untracked_alloc_overhead_is_negligible() {
        let n = 200_000u64;
        let t0 = std::time::Instant::now();
        for i in 0..n {
            let b = Box::new(i);
            std::hint::black_box(&b);
        }
        let per_pair = t0.elapsed().as_nanos() as u64 / n;
        assert!(
            per_pair < 4_000,
            "alloc+free pair cost {per_pair} ns — tracking hot path regressed"
        );
    }

    #[cfg(feature = "alloc-track")]
    #[test]
    fn global_ledger_tracks_alloc_and_free() {
        let _serial = crate::big_alloc_test_lock();
        let before = heap_stats().expect("tracking active in obs tests");
        let v = vec![0u8; 1 << 20];
        let mid = heap_stats().unwrap();
        assert!(mid.allocated_bytes >= before.allocated_bytes + (1 << 20));
        assert!(mid.live_bytes >= before.live_bytes);
        drop(v);
        let after = heap_stats().unwrap();
        assert!(after.freed_bytes >= mid.freed_bytes + (1 << 20));
    }

    #[cfg(feature = "alloc-track")]
    #[test]
    fn scopes_attribute_inclusively_and_nest() {
        let outer = AllocScope::enter("test.outer");
        let keep_outer = vec![1u8; 300_000];
        let inner_net;
        {
            let _inner = AllocScope::enter("test.inner");
            let keep_inner = vec![2u8; 200_000];
            let tmp = vec![3u8; 100_000];
            drop(tmp);
            std::mem::forget(keep_inner); // stays net-allocated forever
            inner_net = scope_snapshot("test.inner").unwrap().net_bytes;
        }
        drop(outer);
        drop(keep_outer);
        let inner = scope_snapshot("test.inner").unwrap();
        let outer = scope_snapshot("test.outer").unwrap();
        // Inner allocated ≥ 300 kB (kept + temp), net ≥ 200 kB while the
        // kept buffer lives; outer saw everything inner saw (inclusive).
        assert!(inner.allocated_bytes >= 300_000, "{inner:?}");
        assert!(inner_net >= 200_000, "inner net {inner_net}");
        assert!(
            outer.allocated_bytes >= inner.allocated_bytes + 300_000 - 64,
            "{outer:?}"
        );
        assert!(outer.peak_net_bytes >= 500_000, "{outer:?}");
    }

    #[cfg(feature = "alloc-track")]
    #[test]
    fn scope_handle_folds_worker_threads_into_parent() {
        let _scope = AllocScope::enter("test.fanout");
        let handle = current_scope();
        let before = scope_snapshot("test.fanout").unwrap().allocated_bytes;
        std::thread::scope(|s| {
            for _ in 0..2 {
                let handle = handle.clone();
                s.spawn(move || {
                    handle.install(|| {
                        let w = vec![0u8; 1 << 20];
                        std::hint::black_box(&w);
                    })
                });
            }
        });
        let after = scope_snapshot("test.fanout").unwrap().allocated_bytes;
        assert!(
            after >= before + (2 << 20),
            "worker bytes not folded: {before} -> {after}"
        );
    }

    #[cfg(feature = "alloc-track")]
    #[test]
    fn span_mem_window_sees_nested_peaks() {
        let outer = span_mem_enter();
        let tmp = vec![0u8; 1 << 20];
        std::hint::black_box(&tmp);
        drop(tmp);
        let inner = span_mem_enter();
        let small = vec![0u8; 4096];
        std::hint::black_box(&small);
        let (inner_alloc, inner_peak) = span_mem_exit(inner);
        drop(small);
        let (outer_alloc, outer_peak) = span_mem_exit(outer);
        assert!((4096..1 << 20).contains(&inner_alloc), "{inner_alloc}");
        assert!(inner_peak >= 4096, "{inner_peak}");
        assert!(outer_alloc >= (1 << 20) + 4096, "{outer_alloc}");
        // The outer window's peak covers the 1 MB temp even though it was
        // freed before the inner window opened.
        assert!(outer_peak >= (1 << 20), "{outer_peak}");
    }

    #[cfg(feature = "alloc-track")]
    #[test]
    fn peak_resets_rebase_to_live() {
        // Serialized against the other large-allocation tests in this
        // binary (alloc + rss) so a concurrent 64 MB spike cannot land
        // between the reset and the readback.
        let _serial = crate::big_alloc_test_lock();
        let tmp = vec![0u8; 16 << 20];
        std::hint::black_box(&tmp);
        drop(tmp);
        reset_peak();
        let s = heap_stats().unwrap();
        // Small-allocation tests may still run concurrently; allow slack
        // well under the 16 MB temp the reset must have discarded.
        assert!(
            s.peak_live_bytes <= s.live_bytes + (4 << 20),
            "peak {} not rebased near live {}",
            s.peak_live_bytes,
            s.live_bytes
        );
    }

    #[cfg(feature = "alloc-track")]
    #[test]
    fn record_alloc_mirrors_gauges() {
        let _scope = AllocScope::enter("test.mirror");
        let v = vec![0u8; 65536];
        std::hint::black_box(&v);
        let reg = Registry::new();
        record_alloc(&reg).expect("tracking active");
        let snap = reg.snapshot();
        let get = |name: &str| snap.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v);
        assert!(get(HEAP_LIVE_GAUGE).unwrap() > 0);
        assert!(get(HEAP_PEAK_GAUGE).unwrap() >= get(HEAP_LIVE_GAUGE).unwrap());
        assert!(get("mem_scope_test_mirror_allocated_bytes").unwrap() >= 65536);
    }
}
