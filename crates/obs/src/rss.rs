//! Process-memory watermarks: current and peak resident-set size.
//!
//! The scale-sweep harness (`scale_bench`) and the service's metrics
//! surface both need to answer "how much memory did that run actually
//! take?" without a heap profiler. On Linux the kernel already tracks
//! the high-water mark: `/proc/self/status` exposes `VmRSS` (current
//! resident set) and `VmHWM` (peak resident set since start or the last
//! reset). This module parses those two lines and mirrors them into the
//! metrics [`Registry`] as gauges, so every `metrics` snapshot and
//! Prometheus scrape carries the watermark.
//!
//! Non-Linux platforms return `None`; callers treat the gauge as
//! best-effort (absent, never wrong). Zero dependencies, consistent
//! with the crate's offline policy.

use crate::registry::Registry;

/// Gauge name under which [`record_rss`] mirrors the peak RSS.
pub const PEAK_RSS_GAUGE: &str = "process_peak_rss_bytes";

/// Gauge name under which [`record_rss`] mirrors the current RSS.
pub const CURRENT_RSS_GAUGE: &str = "process_current_rss_bytes";

/// Peak resident-set size of this process in bytes (`VmHWM`), or `None`
/// when the platform does not expose it (non-Linux, or an unreadable
/// `/proc`). Monotone between [`reset_peak_rss`] calls.
pub fn peak_rss_bytes() -> Option<u64> {
    status_kb_at(status_path(), "VmHWM:").map(|kb| kb * 1024)
}

/// Current resident-set size of this process in bytes (`VmRSS`), or
/// `None` when the platform does not expose it.
pub fn current_rss_bytes() -> Option<u64> {
    status_kb_at(status_path(), "VmRSS:").map(|kb| kb * 1024)
}

/// Resets the kernel's peak-RSS watermark to the current RSS by writing
/// `5` to `/proc/self/clear_refs` (Linux ≥ 4.0). Returns `true` when the
/// reset was accepted. Best-effort: sweep harnesses call this between
/// scale points so each point's `VmHWM` attributes to that point alone;
/// when it fails (non-Linux, restricted `/proc`) the watermark simply
/// stays cumulative, which is still a valid upper bound.
pub fn reset_peak_rss() -> bool {
    reset_peak_rss_at(clear_refs_path())
}

/// The `/proc/self/status` path on Linux, a nonexistent sentinel
/// elsewhere — every read degrades to `None` instead of erroring.
fn status_path() -> &'static str {
    if cfg!(target_os = "linux") {
        "/proc/self/status"
    } else {
        "/nonexistent/proc/self/status"
    }
}

fn clear_refs_path() -> &'static str {
    if cfg!(target_os = "linux") {
        "/proc/self/clear_refs"
    } else {
        "/nonexistent/proc/self/clear_refs"
    }
}

/// [`reset_peak_rss`] against an explicit `clear_refs` path. Unreadable
/// or missing paths report `false`, never an error.
fn reset_peak_rss_at(path: &str) -> bool {
    std::fs::write(path, b"5").is_ok()
}

/// Reads both watermarks and mirrors them into `registry` as the gauges
/// [`PEAK_RSS_GAUGE`] and [`CURRENT_RSS_GAUGE`]. Returns the peak in
/// bytes when available. Platforms without `/proc` leave the gauges
/// untouched (they stay absent rather than reporting zero).
pub fn record_rss(registry: &Registry) -> Option<u64> {
    if let Some(cur) = current_rss_bytes() {
        registry.gauge(CURRENT_RSS_GAUGE).set(cur);
    }
    let peak = peak_rss_bytes()?;
    registry.gauge(PEAK_RSS_GAUGE).set(peak);
    Some(peak)
}

/// Reads a status file at `path` and parses `<key>   <n> kB` out of it.
/// Any failure — missing file, permission denial, malformed content —
/// degrades to `None`; this is what keeps the RSS gauges best-effort on
/// non-Linux hosts and locked-down `/proc` mounts.
fn status_kb_at(path: &str, key: &str) -> Option<u64> {
    let status = std::fs::read_to_string(path).ok()?;
    parse_status_kb(&status, key)
}

/// Parses one `<key>   <n> kB` line out of `/proc/self/status`-shaped
/// content. Platform-independent (unit-testable everywhere).
fn parse_status_kb(status: &str, key: &str) -> Option<u64> {
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix(key) {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb);
        }
    }
    None
}

#[cfg(test)]
mod guard_tests {
    use super::*;

    /// Satellite: an unreadable `/proc` must degrade to `None`-valued
    /// gauges, not an error — and must leave the registry untouched.
    #[test]
    fn unreadable_proc_degrades_to_none() {
        assert_eq!(
            status_kb_at("/nonexistent/proc/self/status", "VmHWM:"),
            None
        );
        assert!(!reset_peak_rss_at("/nonexistent/proc/self/clear_refs"));
    }

    #[test]
    fn malformed_status_degrades_to_none() {
        assert_eq!(parse_status_kb("", "VmHWM:"), None);
        assert_eq!(parse_status_kb("VmHWM: not-a-number kB\n", "VmHWM:"), None);
        assert_eq!(parse_status_kb("VmRSS:\t  42 kB\n", "VmHWM:"), None);
        assert_eq!(parse_status_kb("VmHWM:\t  42 kB\n", "VmHWM:"), Some(42));
    }

    #[test]
    fn record_rss_leaves_gauges_absent_when_unreadable() {
        let reg = Registry::new();
        // Simulate the unreadable-/proc path by recording from parses
        // that return None: on such platforms record_rss must not plant
        // zero-valued gauges. We exercise the real function only where
        // /proc exists; the None contract is covered by construction.
        if peak_rss_bytes().is_none() {
            assert_eq!(record_rss(&reg), None);
            assert!(reg.snapshot().gauges.is_empty());
        }
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;

    #[test]
    fn peak_is_nonzero_and_at_least_current() {
        let peak = peak_rss_bytes().expect("VmHWM readable on Linux");
        let cur = current_rss_bytes().expect("VmRSS readable on Linux");
        assert!(peak > 0 && cur > 0);
        assert!(peak >= cur, "peak {peak} < current {cur}");
    }

    #[test]
    fn peak_is_monotone_across_a_large_allocation() {
        let _serial = crate::big_alloc_test_lock();
        let before = peak_rss_bytes().unwrap();
        // Touch every page so the allocation is actually resident.
        let mut big = vec![0u8; 64 << 20];
        for i in (0..big.len()).step_by(4096) {
            big[i] = i as u8;
        }
        let after = peak_rss_bytes().unwrap();
        assert!(
            after >= before,
            "watermark regressed: {before} -> {after} (len {})",
            big.len()
        );
        // The watermark must have seen the 64 MB: peak ≥ current-while-held.
        let held = current_rss_bytes().unwrap();
        drop(big);
        assert!(after >= held.saturating_sub(16 << 20));
    }

    #[test]
    fn record_rss_mirrors_into_gauges() {
        let reg = Registry::new();
        let peak = record_rss(&reg).expect("peak on Linux");
        let snap = reg.snapshot();
        let get = |name: &str| {
            snap.gauges
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap()
        };
        assert_eq!(get(PEAK_RSS_GAUGE), peak);
        let cur = get(CURRENT_RSS_GAUGE);
        assert!(cur > 0 && cur <= peak);
    }
}
