//! Request budgets: a deadline plus a cancellation flag, installed
//! per-request and checked cooperatively at phase boundaries and inside
//! the mining loops.
//!
//! The design mirrors [`crate::trace`]: the disabled path — no budget
//! installed — is a single thread-local `Cell<bool>` load (~ns), so the
//! checks can sit inside the refinement BFS without a measurable cost
//! when no `timeout_ms` was requested. A unit test pins the disabled
//! path the same way `disabled_span_overhead_is_negligible` pins spans.
//!
//! A [`Budget`] wraps a shared [`BudgetState`] (`Arc`), so the service
//! can capture it once per request and re-install it on worker threads
//! (the mining executor's `rayon` pool spawns real OS threads — same
//! problem, same fix as trace collectors). Expiry is *monotone*: once a
//! deadline has passed or [`Budget::cancel`] has been called, every
//! subsequent check reports expired, and the first check that observes
//! it caches the verdict so later checks skip the clock read.
//!
//! Work that notices expiry calls [`stop`] with a static site name; the
//! site is recorded (deduplicated) in the budget's truncation list,
//! which becomes the `truncated` detail of a `degraded` response.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Shared per-request budget state. Cheap to check, clone-free on the
/// hot path (threads hold an `Arc` in TLS).
#[derive(Debug)]
pub struct BudgetState {
    deadline: Option<Instant>,
    cancelled: AtomicBool,
    /// Set by the first check that observes expiry; later checks skip
    /// the `Instant::now()` call. Sound because expiry is monotone.
    expired_seen: AtomicBool,
    truncated: Mutex<Vec<&'static str>>,
}

impl BudgetState {
    fn expired(&self) -> bool {
        if self.expired_seen.load(Ordering::Relaxed) {
            return true;
        }
        let hit = self.cancelled.load(Ordering::Relaxed)
            || self.deadline.is_some_and(|d| Instant::now() >= d);
        if hit {
            self.expired_seen.store(true, Ordering::Relaxed);
        }
        hit
    }

    fn record_truncation(&self, site: &'static str) {
        let mut t = self.truncated.lock().unwrap_or_else(|e| e.into_inner());
        if !t.contains(&site) {
            t.push(site);
        }
    }
}

/// A per-request budget: an optional deadline plus a cancellation
/// flag. Create one per `ask`, [`install`](Budget::install) it around
/// the pipeline, and inspect [`truncated`](Budget::truncated)
/// afterwards to learn whether (and where) work was cut short.
#[derive(Debug, Clone)]
pub struct Budget {
    state: Arc<BudgetState>,
}

impl Budget {
    /// A budget expiring `timeout` from now.
    pub fn with_timeout(timeout: Duration) -> Budget {
        Budget::build(Some(Instant::now() + timeout))
    }

    /// A budget with no deadline. It never expires on its own but can
    /// still be [`cancel`](Budget::cancel)led.
    pub fn unlimited() -> Budget {
        Budget::build(None)
    }

    fn build(deadline: Option<Instant>) -> Budget {
        Budget {
            state: Arc::new(BudgetState {
                deadline,
                cancelled: AtomicBool::new(false),
                expired_seen: AtomicBool::new(false),
                truncated: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Flags the budget as expired immediately (caller-driven
    /// cancellation — e.g. a disconnected client).
    pub fn cancel(&self) {
        self.state.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether the deadline has passed or [`cancel`](Budget::cancel)
    /// was called.
    pub fn is_expired(&self) -> bool {
        self.state.expired()
    }

    /// Whether any work site truncated under this budget — the
    /// `degraded` marker of the response.
    pub fn degraded(&self) -> bool {
        !self
            .state
            .truncated
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_empty()
    }

    /// The sites (in first-truncation order, deduplicated) that cut
    /// work short under this budget.
    pub fn truncated(&self) -> Vec<&'static str> {
        self.state
            .truncated
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Runs `f` with this budget installed as the thread's current
    /// budget; [`expired`] and [`stop`] observe it for the duration.
    /// The previous budget (if any) is restored afterwards — also on
    /// panic, so an unwinding request never leaves a stale budget on a
    /// pooled worker thread.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        struct Restore {
            prev: Option<Arc<BudgetState>>,
            prev_flag: bool,
        }
        impl Drop for Restore {
            fn drop(&mut self) {
                CURRENT.with(|c| *c.borrow_mut() = self.prev.take());
                ACTIVE.with(|a| a.set(self.prev_flag));
            }
        }
        let _restore = Restore {
            prev: CURRENT.with(|c| c.borrow_mut().replace(Arc::clone(&self.state))),
            prev_flag: ACTIVE.with(|a| a.replace(true)),
        };
        f()
    }
}

thread_local! {
    /// Fast gate: `true` iff a budget is installed on this thread.
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static CURRENT: RefCell<Option<Arc<BudgetState>>> = const { RefCell::new(None) };
}

/// Whether a budget is installed on this thread. One TLS load.
pub fn active() -> bool {
    ACTIVE.with(Cell::get)
}

/// Whether the current budget (if any) has expired. Without an
/// installed budget this is a single TLS load returning `false` — the
/// free-when-disabled path.
pub fn expired() -> bool {
    if !ACTIVE.with(Cell::get) {
        return false;
    }
    CURRENT.with(|c| c.borrow().as_ref().is_some_and(|s| s.expired()))
}

/// The cooperative check used inside loops and at phase boundaries: if
/// the current budget has expired, records `site` in its truncation
/// list and returns `true` ("stop here, return best-so-far").
/// Without an installed budget: one TLS load, `false`.
pub fn stop(site: &'static str) -> bool {
    if !ACTIVE.with(Cell::get) {
        return false;
    }
    CURRENT.with(|c| {
        let b = c.borrow();
        match b.as_ref() {
            Some(s) if s.expired() => {
                s.record_truncation(site);
                true
            }
            _ => false,
        }
    })
}

/// The budget currently installed on this thread, if any. Capture it
/// before handing work to a thread pool and re-[`install`](Budget::install)
/// it inside the worker closure.
pub fn current() -> Option<Budget> {
    if !ACTIVE.with(Cell::get) {
        return None;
    }
    CURRENT
        .with(|c| c.borrow().clone())
        .map(|state| Budget { state })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_budget_means_never_expired() {
        assert!(!active());
        assert!(!expired());
        assert!(!stop("tests.anywhere"));
        assert!(current().is_none());
    }

    #[test]
    fn deadline_expiry_is_observed_and_recorded() {
        let b = Budget::with_timeout(Duration::from_millis(1));
        b.install(|| {
            assert!(active());
            while !expired() {
                std::thread::sleep(Duration::from_millis(1));
            }
            assert!(stop("tests.phase_a"));
            assert!(stop("tests.phase_a"), "stop keeps returning true");
            assert!(stop("tests.phase_b"));
        });
        assert!(b.is_expired());
        assert!(b.degraded());
        assert_eq!(b.truncated(), vec!["tests.phase_a", "tests.phase_b"]);
    }

    #[test]
    fn unlimited_budget_expires_only_on_cancel() {
        let b = Budget::unlimited();
        b.install(|| {
            assert!(!expired());
            assert!(!stop("tests.never"));
        });
        assert!(!b.degraded());
        b.cancel();
        b.install(|| {
            assert!(expired());
            assert!(stop("tests.cancelled"));
        });
        assert_eq!(b.truncated(), vec!["tests.cancelled"]);
    }

    #[test]
    fn install_restores_previous_budget_even_on_panic() {
        let outer = Budget::unlimited();
        outer.install(|| {
            let inner = Budget::with_timeout(Duration::ZERO);
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                inner.install(|| {
                    assert!(expired());
                    panic!("boom");
                })
            }));
            assert!(r.is_err());
            // Back on the outer (never-expiring) budget.
            assert!(active());
            assert!(!expired());
        });
        assert!(!active());
    }

    #[test]
    fn current_budget_reinstalls_across_threads() {
        let b = Budget::unlimited();
        b.cancel();
        b.install(|| {
            let grabbed = current().expect("budget installed");
            std::thread::spawn(move || {
                assert!(!active(), "fresh thread has no budget");
                grabbed.install(|| assert!(stop("tests.worker")));
            })
            .join()
            .unwrap();
        });
        assert_eq!(b.truncated(), vec!["tests.worker"]);
    }

    /// The free-when-disabled pin, modeled on the span-overhead test in
    /// `trace.rs`: with no budget installed, `stop()` must stay a
    /// couple of TLS loads. The bound is intentionally generous (CI
    /// machines are noisy); the measured cost is orders of magnitude
    /// below it.
    #[test]
    fn disabled_budget_check_overhead_is_negligible() {
        const N: u32 = 200_000;
        let start = Instant::now();
        for _ in 0..N {
            std::hint::black_box(stop("tests.overhead"));
        }
        let per_check = start.elapsed().as_nanos() / u128::from(N);
        assert!(
            per_check < 2_000,
            "disabled budget check cost {per_check} ns, expected ~ns"
        );
    }
}
