//! Deterministic fault injection for robustness tests.
//!
//! A *failpoint* is a named site in production code (`cache.
//! provenance_compute`, `ingest.load`, `mine.refine`, …) that normally
//! does nothing: with no plan armed, [`failpoint`] is one relaxed
//! atomic load. Arming a plan — from the `CAJADE_FAULTS` environment
//! variable at binary startup ([`init_from_env`]) or programmatically
//! from tests ([`set_plan`]) — makes named sites misbehave on purpose:
//!
//! ```text
//! CAJADE_FAULTS="site=action[:arg][@count][,site=action…]"
//!
//! actions:  panic            panic! at the site
//!           error            the site returns Err (sites that cannot
//!                            fail escalate this to a panic)
//!           sleep:<ms>       block <ms> milliseconds, then continue
//! @count:   fire at most <count> times, then the site goes quiet
//! ```
//!
//! Example: `CAJADE_FAULTS=cache.provenance_compute=panic@1` panics the
//! first cached provenance computation and leaves every later request
//! untouched — the shape the CI panic-recovery smoke drives.
//!
//! Every fire increments `fault_<site>_fired_total` (dots mapped to
//! underscores) in the [global registry](crate::global), so injected
//! faults are visible through the serve `metrics` op.
//!
//! The armed plan is process-global; tests that arm one must serialize
//! themselves (see [`test_guard`]) and [`clear`] it afterwards.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, RwLock};
use std::time::Duration;

/// What an armed site does when reached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultAction {
    /// `panic!` at the site.
    Panic,
    /// Return an error from the site (escalated to a panic at sites
    /// with no error path).
    Error,
    /// Sleep for the given duration, then proceed normally.
    Sleep(Duration),
}

#[derive(Debug)]
struct ArmedSite {
    site: String,
    action: FaultAction,
    /// Remaining fires; `u64::MAX` means unlimited.
    remaining: AtomicU64,
}

fn plan() -> &'static RwLock<Vec<ArmedSite>> {
    static PLAN: OnceLock<RwLock<Vec<ArmedSite>>> = OnceLock::new();
    PLAN.get_or_init(|| RwLock::new(Vec::new()))
}

/// Fast gate checked by every failpoint before touching the plan.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Parses a `CAJADE_FAULTS`-grammar spec into site entries.
fn parse(spec: &str) -> Result<Vec<ArmedSite>, String> {
    let mut out = Vec::new();
    for entry in spec.split(',').map(str::trim).filter(|e| !e.is_empty()) {
        let (site, rest) = entry
            .split_once('=')
            .ok_or_else(|| format!("fault entry `{entry}` missing `=`"))?;
        let (action_part, count) = match rest.split_once('@') {
            Some((a, n)) => (
                a,
                n.parse::<u64>()
                    .map_err(|_| format!("bad fire count in `{entry}`"))?,
            ),
            None => (rest, u64::MAX),
        };
        let action = match action_part.split_once(':') {
            Some(("sleep", ms)) => FaultAction::Sleep(Duration::from_millis(
                ms.parse::<u64>()
                    .map_err(|_| format!("bad sleep millis in `{entry}`"))?,
            )),
            None if action_part == "panic" => FaultAction::Panic,
            None if action_part == "error" => FaultAction::Error,
            _ => return Err(format!("unknown fault action in `{entry}`")),
        };
        out.push(ArmedSite {
            site: site.trim().to_string(),
            action,
            remaining: AtomicU64::new(count),
        });
    }
    Ok(out)
}

/// Arms a fault plan from a `CAJADE_FAULTS`-grammar spec, replacing
/// any previous plan. An empty spec disarms everything.
pub fn set_plan(spec: &str) -> Result<(), String> {
    let sites = parse(spec)?;
    let enabled = !sites.is_empty();
    *plan().write().unwrap_or_else(|e| e.into_inner()) = sites;
    ENABLED.store(enabled, Ordering::Release);
    Ok(())
}

/// Disarms every failpoint.
pub fn clear() {
    ENABLED.store(false, Ordering::Release);
    plan().write().unwrap_or_else(|e| e.into_inner()).clear();
}

/// Reads `CAJADE_FAULTS` and arms the described plan. Call once at
/// binary startup; a malformed spec aborts startup loudly rather than
/// silently testing nothing.
pub fn init_from_env() {
    if let Ok(spec) = std::env::var("CAJADE_FAULTS") {
        if let Err(e) = set_plan(&spec) {
            panic!("invalid CAJADE_FAULTS: {e}");
        }
    }
}

/// Serializes tests that arm the global plan. Hold the guard for the
/// whole test and call [`clear`] before dropping it.
pub fn test_guard() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Looks up `site` in the armed plan and consumes one fire if it
/// matches. Returns the action to perform, if any.
fn fire(site: &str) -> Option<FaultAction> {
    let plan = plan().read().unwrap_or_else(|e| e.into_inner());
    let armed = plan.iter().find(|s| s.site == site)?;
    // Consume one fire; a site at 0 stays quiet (enables "@1 then the
    // next request succeeds" smokes).
    let mut left = armed.remaining.load(Ordering::Relaxed);
    loop {
        if left == 0 {
            return None;
        }
        let next = if left == u64::MAX { left } else { left - 1 };
        match armed.remaining.compare_exchange_weak(
            left,
            next,
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => break,
            Err(observed) => left = observed,
        }
    }
    crate::global()
        .counter(&format!(
            "fault_{}_fired_total",
            armed.site.replace('.', "_")
        ))
        .inc();
    Some(armed.action.clone())
}

/// The failpoint for sites with an error path. Disarmed: one relaxed
/// atomic load, `Ok`. Armed `panic` panics; `error` returns `Err`
/// with a recognizable message; `sleep` blocks then returns `Ok`.
pub fn failpoint(site: &str) -> Result<(), String> {
    if !ENABLED.load(Ordering::Acquire) {
        return Ok(());
    }
    match fire(site) {
        None => Ok(()),
        Some(FaultAction::Sleep(d)) => {
            std::thread::sleep(d);
            Ok(())
        }
        Some(FaultAction::Error) => Err(format!("injected fault at {site}")),
        Some(FaultAction::Panic) => panic!("injected panic at {site}"),
    }
}

/// The failpoint for infallible sites (mining phases): `error`
/// escalates to a panic because there is no error path to return
/// through. Disarmed: one relaxed atomic load.
pub fn failpoint_infallible(site: &str) {
    if !ENABLED.load(Ordering::Acquire) {
        return;
    }
    match fire(site) {
        None => {}
        Some(FaultAction::Sleep(d)) => std::thread::sleep(d),
        Some(FaultAction::Error) | Some(FaultAction::Panic) => {
            panic!("injected panic at {site}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_failpoints_are_inert() {
        let _g = test_guard();
        clear();
        assert_eq!(failpoint("tests.nowhere"), Ok(()));
        failpoint_infallible("tests.nowhere");
    }

    #[test]
    fn parse_rejects_garbage_and_accepts_the_grammar() {
        assert!(parse("no_equals").is_err());
        assert!(parse("a=explode").is_err());
        assert!(parse("a=sleep:abc").is_err());
        assert!(parse("a=panic@x").is_err());
        let sites = parse("a.b=panic@1, c=error ,d=sleep:25").unwrap();
        assert_eq!(sites.len(), 3);
        assert_eq!(sites[0].action, FaultAction::Panic);
        assert_eq!(sites[0].remaining.load(Ordering::Relaxed), 1);
        assert_eq!(sites[1].action, FaultAction::Error);
        assert_eq!(sites[1].remaining.load(Ordering::Relaxed), u64::MAX);
        assert_eq!(
            sites[2].action,
            FaultAction::Sleep(Duration::from_millis(25))
        );
    }

    #[test]
    fn error_action_fires_counts_down_and_goes_quiet() {
        let _g = test_guard();
        set_plan("tests.err_site=error@2").unwrap();
        assert!(failpoint("tests.err_site").is_err());
        assert!(failpoint("tests.other_site").is_ok(), "unarmed site");
        assert!(failpoint("tests.err_site").is_err());
        assert!(failpoint("tests.err_site").is_ok(), "count exhausted");
        let fired = crate::global()
            .counter("fault_tests_err_site_fired_total")
            .get();
        assert!(fired >= 2, "fire counter recorded: {fired}");
        clear();
        assert!(failpoint("tests.err_site").is_ok());
    }

    #[test]
    fn panic_action_panics_at_fallible_and_infallible_sites() {
        let _g = test_guard();
        set_plan("tests.panic_site=panic,tests.esc_site=error").unwrap();
        let r = std::panic::catch_unwind(|| failpoint("tests.panic_site"));
        assert!(r.is_err());
        // `error` at an infallible site escalates to a panic.
        let r = std::panic::catch_unwind(|| failpoint_infallible("tests.esc_site"));
        assert!(r.is_err());
        clear();
    }

    #[test]
    fn sleep_action_delays_then_continues() {
        let _g = test_guard();
        set_plan("tests.sleep_site=sleep:30@1").unwrap();
        let start = std::time::Instant::now();
        assert!(failpoint("tests.sleep_site").is_ok());
        assert!(start.elapsed() >= Duration::from_millis(30));
        clear();
    }
}
