//! Log-bucketed (HDR-style) latency histograms.
//!
//! Values are bucketed by a 4-bit-mantissa logarithmic scheme: every
//! power-of-two octave is split into 16 sub-buckets, and values below 16
//! are recorded exactly. A bucket's representative value is its midpoint,
//! so the relative quantile-estimation error is bounded by half a
//! sub-bucket width: **≤ 1/32 (3.125%)** — pinned by a unit test.
//!
//! Recording is lock-free (one `fetch_add` on an atomic bucket plus the
//! count/sum accumulators), so histograms can be shared across the
//! worker threads of a parallel stage without contention games.
//! [`HistSnapshot`]s are plain data: sparse (bucket index, count) pairs
//! that merge cheaply — the bench harness merges per-round snapshots
//! into one distribution, and the registry snapshots live histograms
//! without stopping writers.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// 4 mantissa bits → 16 sub-buckets per octave.
const MANTISSA_BITS: u32 = 4;
const SUBBUCKETS: u32 = 1 << MANTISSA_BITS; // 16
/// Exact buckets 0..16, then 60 octaves (msb 4..=63) × 16 sub-buckets.
const NUM_BUCKETS: usize = (SUBBUCKETS + (64 - MANTISSA_BITS) * SUBBUCKETS) as usize; // 976

/// Maps a value to its bucket index. Exact below 16; above, the index is
/// `(msb - 3) * 16 + next-4-bits`, which lines up contiguously with the
/// exact region (`bucket_index(16) == 16`).
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUBBUCKETS as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros(); // ≥ 4
    let shift = msb - MANTISSA_BITS;
    let sub = (v >> shift) & (SUBBUCKETS as u64 - 1);
    ((msb - MANTISSA_BITS + 1) * SUBBUCKETS) as usize + sub as usize
}

/// The midpoint of a bucket's value range — the representative returned
/// by quantile estimation.
fn bucket_mid(idx: usize) -> u64 {
    if idx < SUBBUCKETS as usize {
        return idx as u64;
    }
    let octave = idx as u64 / SUBBUCKETS as u64; // ≥ 1
    let sub = idx as u64 % SUBBUCKETS as u64;
    let shift = (octave - 1) as u32; // msb - MANTISSA_BITS
    let lower = (SUBBUCKETS as u64 + sub) << shift;
    let width = 1u64 << shift;
    lower + width / 2
}

/// A concurrent log-bucketed histogram of `u64` samples (typically µs).
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        let buckets = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample. Lock-free; callable from any thread.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a duration in microseconds (saturating at `u64::MAX`).
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Folds another histogram's state into this one.
    pub fn merge_from(&self, other: &Histogram) {
        for (i, b) in other.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                self.buckets[i].fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// A point-in-time copy of the distribution. Concurrent writers may
    /// land between bucket reads; counts stay self-consistent enough for
    /// reporting (count is re-derived from the bucket sum).
    pub fn snapshot(&self) -> HistSnapshot {
        let mut buckets = Vec::new();
        let mut count = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                buckets.push((i as u32, n));
                count += n;
            }
        }
        HistSnapshot {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Shorthand: `quantile(q)` over a fresh snapshot.
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot().quantile(q)
    }
}

/// Plain-data snapshot of a [`Histogram`]: sparse `(bucket, count)`
/// pairs sorted by bucket index.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Non-empty buckets as `(bucket index, sample count)`, ascending.
    pub buckets: Vec<(u32, u64)>,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples (µs when fed by `record_duration`).
    pub sum: u64,
    /// Largest recorded sample (exact, not bucketed).
    pub max: u64,
    // NOTE: keep fields in sync with `merge` below.
}

impl HistSnapshot {
    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) as the representative
    /// midpoint of the bucket holding that rank. Returns 0 for an empty
    /// snapshot; `q = 1.0` returns the exact observed max.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let target = ((q.max(0.0) * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for &(idx, n) in &self.buckets {
            cum += n;
            if cum >= target {
                return bucket_mid(idx as usize);
            }
        }
        self.max
    }

    /// Mean of the recorded samples (0 for an empty snapshot).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Folds `other` into `self`.
    pub fn merge(&mut self, other: &HistSnapshot) {
        let mut merged = Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut a, mut b) = (
            self.buckets.iter().peekable(),
            other.buckets.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ia, na)), Some(&&(ib, nb))) => {
                    if ia == ib {
                        merged.push((ia, na + nb));
                        a.next();
                        b.next();
                    } else if ia < ib {
                        merged.push((ia, na));
                        a.next();
                    } else {
                        merged.push((ib, nb));
                        b.next();
                    }
                }
                (Some(&&x), None) => {
                    merged.push(x);
                    a.next();
                }
                (None, Some(&&x)) => {
                    merged.push(x);
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.buckets = merged;
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..16u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_mid(v as usize), v);
        }
        assert_eq!(bucket_index(16), 16);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn bucket_index_is_monotonic_and_mid_lands_in_bucket() {
        let mut prev = 0usize;
        let mut v = 1u64;
        while v < u64::MAX / 3 {
            let idx = bucket_index(v);
            assert!(idx >= prev, "index regressed at v={v}");
            prev = idx;
            assert_eq!(
                bucket_index(bucket_mid(idx)),
                idx,
                "midpoint escapes bucket {idx}"
            );
            v = v.saturating_mul(3) / 2 + 1;
        }
    }

    /// Satellite: pins the quantile estimation error bound. Bucket
    /// midpoints are at most half a sub-bucket (1/32 ≈ 3.125%) from any
    /// member value.
    #[test]
    fn quantile_relative_error_is_bounded() {
        let h = Histogram::new();
        // Deterministic LCG over a wide dynamic range (~1 µs .. ~17 s).
        let mut x = 0x2545f4914f6cdd1du64;
        let mut samples = Vec::with_capacity(10_000);
        for i in 0..10_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = 1 + (x >> 40) % (1 << (4 + (i % 21))); // varying magnitudes
            samples.push(v);
            h.record(v);
        }
        samples.sort_unstable();
        let snap = h.snapshot();
        for &q in &[0.5, 0.9, 0.99, 0.999] {
            let exact = samples[(((q * samples.len() as f64).ceil() as usize).max(1)) - 1];
            let est = snap.quantile(q);
            let err = (est as f64 - exact as f64).abs() / exact as f64;
            assert!(
                err <= 1.0 / 32.0 + 1e-9,
                "q={q}: est {est} vs exact {exact}, rel err {err}"
            );
        }
        assert_eq!(snap.quantile(1.0), *samples.last().unwrap());
        assert_eq!(snap.count, 10_000);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.snapshot().mean(), 0.0);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let a = Histogram::new();
        let b = Histogram::new();
        let both = Histogram::new();
        for v in [1u64, 5, 17, 300, 4096, 100_000] {
            a.record(v);
            both.record(v);
        }
        for v in [2u64, 17, 999, 1_000_000] {
            b.record(v);
            both.record(v);
        }
        // Histogram-level merge…
        a.merge_from(&b);
        assert_eq!(a.snapshot(), both.snapshot());
        // …and snapshot-level merge agree.
        let a2 = Histogram::new();
        let b2 = Histogram::new();
        for v in [1u64, 5, 17, 300, 4096, 100_000] {
            a2.record(v);
        }
        for v in [2u64, 17, 999, 1_000_000] {
            b2.record(v);
        }
        let mut s = a2.snapshot();
        s.merge(&b2.snapshot());
        assert_eq!(s, both.snapshot());
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(Histogram::new());
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let h = std::sync::Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1_000 + i % 997);
                    }
                });
            }
        });
        assert_eq!(h.count(), 40_000);
        assert_eq!(
            h.snapshot().buckets.iter().map(|&(_, n)| n).sum::<u64>(),
            40_000
        );
    }

    #[test]
    fn record_duration_uses_micros() {
        let h = Histogram::new();
        h.record_duration(Duration::from_millis(3));
        let snap = h.snapshot();
        assert_eq!(snap.max, 3_000);
        assert_eq!(snap.sum, 3_000);
    }
}
