//! A process- or service-scoped registry of named metrics.
//!
//! Three instrument kinds, all get-or-create by name and shareable as
//! `Arc` handles (register once, record on the hot path with no map
//! lookups):
//!
//! * [`Counter`] — monotonically increasing `u64` (suffix `_total` by
//!   convention);
//! * [`Gauge`] — last-write-wins `u64` (sizes, entry counts);
//! * [`Histogram`] — latency distributions (suffix `_us`).
//!
//! [`Registry::snapshot`] produces a plain-data [`RegistrySnapshot`]
//! that the serve protocol renders to JSON, and
//! [`RegistrySnapshot::render_prometheus`] emits the Prometheus text
//! exposition format (counters/gauges verbatim, histograms as summaries
//! with `quantile` labels plus `_sum`/`_count`).

use crate::hist::{HistSnapshot, Histogram};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// A monotonically increasing counter.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins instantaneous value.
#[derive(Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Named counters, gauges, and histograms. Cheap to clone handles out
/// of; a `Registry` is shared as `Arc<Registry>` (see
/// [`global`](crate::global)).
#[derive(Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    hists: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field(
                "counters",
                &self
                    .counters
                    .read()
                    .unwrap_or_else(|e| e.into_inner())
                    .len(),
            )
            .field(
                "gauges",
                &self.gauges.read().unwrap_or_else(|e| e.into_inner()).len(),
            )
            .field(
                "histograms",
                &self.hists.read().unwrap_or_else(|e| e.into_inner()).len(),
            )
            .finish()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Returns the counter named `name`, creating it on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_create(&self.counters, name)
    }

    /// Returns the gauge named `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_create(&self.gauges, name)
    }

    /// Returns the histogram named `name`, creating it on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        get_or_create(&self.hists, name)
    }

    /// A point-in-time copy of every registered metric, names sorted.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let counters = self
            .counters
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = self
            .gauges
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let hists = self
            .hists
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        RegistrySnapshot {
            counters,
            gauges,
            hists,
        }
    }
}

fn get_or_create<T: Default>(map: &RwLock<BTreeMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    if let Some(v) = map.read().unwrap_or_else(|e| e.into_inner()).get(name) {
        return Arc::clone(v);
    }
    let mut w = map.write().unwrap_or_else(|e| e.into_inner());
    Arc::clone(w.entry(name.to_string()).or_default())
}

/// Quantiles reported for each histogram, in both the JSON and
/// Prometheus renderings.
pub const QUANTILES: [(f64, &str); 4] =
    [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99"), (0.999, "0.999")];

/// Plain-data snapshot of a [`Registry`], sorted by metric name.
#[derive(Debug, Clone, Default)]
pub struct RegistrySnapshot {
    /// `(name, value)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge.
    pub gauges: Vec<(String, u64)>,
    /// `(name, snapshot)` for every histogram.
    pub hists: Vec<(String, HistSnapshot)>,
}

impl RegistrySnapshot {
    /// Renders the Prometheus text exposition format. Histograms become
    /// `summary` metrics: `name{quantile="0.5"} …` lines plus
    /// `name_sum` / `name_count`.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
        }
        for (name, snap) in &self.hists {
            out.push_str(&format!("# TYPE {name} summary\n"));
            for (q, label) in QUANTILES {
                out.push_str(&format!(
                    "{name}{{quantile=\"{label}\"}} {}\n",
                    snap.quantile(q)
                ));
            }
            out.push_str(&format!("{name}_sum {}\n", snap.sum));
            out.push_str(&format!("{name}_count {}\n", snap.count));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_the_same_instrument() {
        let r = Registry::new();
        let a = r.counter("asks_total");
        let b = r.counter("asks_total");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        r.gauge("open_sessions").set(4);
        assert_eq!(r.gauge("open_sessions").get(), 4);
        r.histogram("ask_total_us").record(100);
        assert_eq!(r.histogram("ask_total_us").count(), 1);
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let r = Registry::new();
        r.counter("zeta_total").inc();
        r.counter("alpha_total").add(5);
        r.gauge("g").set(7);
        r.histogram("h_us").record(50);
        let snap = r.snapshot();
        assert_eq!(
            snap.counters,
            vec![("alpha_total".into(), 5), ("zeta_total".into(), 1)]
        );
        assert_eq!(snap.gauges, vec![("g".into(), 7)]);
        assert_eq!(snap.hists.len(), 1);
        assert_eq!(snap.hists[0].1.count, 1);
    }

    #[test]
    fn prometheus_rendering_shape() {
        let r = Registry::new();
        r.counter("asks_total").add(21);
        r.gauge("open_sessions").set(1);
        let h = r.histogram("ask_total_us");
        for i in 1..=100u64 {
            h.record(i * 10);
        }
        let text = r.snapshot().render_prometheus();
        assert!(text.contains("# TYPE asks_total counter\nasks_total 21\n"));
        assert!(text.contains("# TYPE open_sessions gauge\nopen_sessions 1\n"));
        assert!(text.contains("# TYPE ask_total_us summary\n"));
        assert!(text.contains("ask_total_us{quantile=\"0.5\"} "));
        assert!(text.contains("ask_total_us{quantile=\"0.999\"} "));
        assert!(text.contains("ask_total_us_count 100\n"));
        assert!(text.contains("ask_total_us_sum 50500\n"));
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert_eq!(line.split_whitespace().count(), 2, "bad line: {line}");
        }
    }
}
