//! # cajade-obs
//!
//! The unified telemetry layer: structured tracing spans, log-bucketed
//! latency histograms, and a registry of named counters/gauges/histograms.
//! Every number the paper's runtime-breakdown figures (Fig. 7, Fig. 9c/9d)
//! report — and every tail-latency percentile the production-serving
//! roadmap demands — flows through this crate.
//!
//! Zero external dependencies (std only), consistent with the offline
//! `crates/compat` policy: nothing here can pull the build onto the
//! network.
//!
//! Three pieces:
//!
//! * [`trace`] — RAII span guards ([`trace::span`]) over
//!   thread-local span stacks with monotonically
//!   assigned trace/span ids. When neither a sink nor a per-request
//!   [`trace::Collector`] is active, creating a span is a couple of
//!   atomic/TLS loads (~ns) and records nothing. A pluggable
//!   [`trace::TraceSink`] emits JSON-lines events, gated by the
//!   `CAJADE_TRACE` env var ([`init_from_env`]).
//! * [`hist`] — HDR-style log-bucketed [`hist::Histogram`]s: lock-free
//!   recording, mergeable bucket state, p50/p90/p99/p999 estimation with
//!   a bounded relative error (≤ 1/32, pinned by a unit test).
//! * [`registry`] — a [`registry::Registry`] of named counters, gauges,
//!   and histograms with a JSON-friendly snapshot and a Prometheus-style
//!   text exposition renderer. [`global`] returns the process-wide
//!   instance; services may also carry their own (test isolation).
//! * [`budget`] — per-request deadlines with cooperative cancellation:
//!   a [`budget::Budget`] installed around a request makes
//!   [`budget::stop`] checks inside the pipeline's loops report expiry
//!   and record which phases truncated. Disabled path: one TLS load.
//! * [`faults`] — `CAJADE_FAULTS`-gated deterministic fault injection
//!   (panic/error/sleep at named failpoints) for robustness tests.
//! * [`rss`] — process-memory watermarks (current/peak RSS from
//!   `/proc/self/status` on Linux), mirrored into the registry as
//!   gauges so every metrics snapshot carries the memory high-water
//!   mark.
//! * [`alloc`] — heap attribution: a tracking [`alloc::TrackingAlloc`]
//!   global allocator (opt-in per binary) with global/thread/scoped
//!   byte ledgers. [`alloc::AllocScope::enter`] guards attribute bytes
//!   to pipeline stages, mining phases, ingest stages, and caches;
//!   traced spans carry per-span `alloc_bytes`/`peak_bytes` deltas.
//!   Compiled to a pass-through without the `alloc-track` feature.
//!
//! The span taxonomy and metric names used across the workspace are
//! documented in `docs/OBSERVABILITY.md`; budget/degradation semantics
//! and the failpoint site catalog live in `docs/ROBUSTNESS.md`.

#![warn(missing_docs)]

pub mod alloc;
pub mod budget;
pub mod faults;
pub mod hist;
pub mod registry;
pub mod rss;
pub mod trace;

pub use alloc::{AllocScope, ScopeHandle, TrackingAlloc};
pub use budget::Budget;
pub use hist::{HistSnapshot, Histogram};
pub use registry::{Counter, Gauge, Registry, RegistrySnapshot};
pub use rss::{current_rss_bytes, peak_rss_bytes, record_rss, reset_peak_rss};
pub use trace::{span, span_detail, Collector, Level, SpanGuard, SpanRecord, TraceSink};

use std::sync::{Arc, OnceLock};

// The obs unit-test binary runs under the tracking allocator so the
// alloc-ledger tests observe real attribution.
#[cfg(test)]
#[global_allocator]
static TEST_ALLOC: alloc::TrackingAlloc = alloc::TrackingAlloc;

/// Serializes the unit tests that allocate tens of MB or reset global
/// watermarks, so their asserts don't race each other's spikes.
#[cfg(test)]
pub(crate) fn big_alloc_test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// The process-wide registry. Binaries (the serve and bench front ends)
/// report through this instance; library code takes a `&Registry` so
/// tests can isolate their counters.
pub fn global() -> &'static Arc<Registry> {
    static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();
    GLOBAL.get_or_init(|| Arc::new(Registry::new()))
}

/// Reads `CAJADE_TRACE` and installs a JSON-lines stderr sink at the
/// requested level. Idempotent; call it once at binary startup.
///
/// | value | effect |
/// |---|---|
/// | unset, `0`, `off` | tracing disabled (the default; span guards are inert) |
/// | `1`, `spans` | coarse request/stage spans emitted as JSON lines on stderr |
/// | `2`, `detail`, `all` | adds per-phase spans (mining phases, ingest stages) |
pub fn init_from_env() {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        let level = match std::env::var("CAJADE_TRACE").ok().as_deref() {
            Some("1") | Some("spans") => Level::Spans,
            Some("2") | Some("detail") | Some("all") => Level::Detail,
            _ => Level::Off,
        };
        if level != Level::Off {
            trace::set_sink(Arc::new(trace::JsonLinesSink::stderr()), level);
        }
    });
}
