//! Provenance-only explanations: CaJaDE restricted to the PT-only join
//! graph Ω₀ — the baseline arm of the user study (§6.3 / Table 7, the
//! "Provenance-based Explanations" block). No context tables are joined;
//! patterns can only use the attributes of the relations the query itself
//! accessed.

use cajade_graph::{Apt, JoinGraph, Result};
use cajade_mining::{mine_apt, MinedExplanation, MiningParams, Question};
use cajade_query::ProvenanceTable;
use cajade_storage::Database;

/// Mines top-k patterns over the bare provenance table.
pub fn provenance_only_explanations(
    db: &Database,
    pt: &ProvenanceTable,
    question: &Question,
    params: &MiningParams,
) -> Result<(Vec<MinedExplanation>, Apt)> {
    let apt = Apt::materialize(db, pt, &JoinGraph::pt_only())?;
    let outcome = mine_apt(&apt, pt, question, params);
    Ok((outcome.explanations, apt))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cajade_datagen::nba::{self, NbaConfig};
    use cajade_mining::SelAttr;
    use cajade_query::parse_sql;

    #[test]
    fn provenance_only_uses_only_pt_attributes() {
        let gen = nba::generate(NbaConfig::tiny());
        let q = parse_sql(
            "SELECT COUNT(*) AS win, s.season_name \
             FROM team t, game g, season s \
             WHERE t.team_id = g.winner_id AND g.season_id = s.season_id AND t.team = 'GSW' \
             GROUP BY s.season_name",
        )
        .unwrap();
        let pt = ProvenanceTable::compute(&gen.db, &q).unwrap();
        let t1 = pt
            .find_group(&gen.db, &q, &[("season_name", "2015-16")])
            .unwrap();
        let t2 = pt
            .find_group(&gen.db, &q, &[("season_name", "2012-13")])
            .unwrap();
        let params = MiningParams {
            sel_attr: SelAttr::Count(4),
            lambda_f1_samp: 1.0,
            lambda_pat_samp: 1.0,
            ..Default::default()
        };
        let (expl, apt) =
            provenance_only_explanations(&gen.db, &pt, &Question::TwoPoint { t1, t2 }, &params)
                .unwrap();
        assert!(!expl.is_empty(), "some provenance-only explanation found");
        // Every pattern attribute is a prov_ attribute.
        for e in &expl {
            for (f, _) in e.pattern.preds() {
                assert!(apt.fields[*f].from_pt);
                assert!(apt.fields[*f].name.starts_with("prov_"));
            }
        }
    }
}
