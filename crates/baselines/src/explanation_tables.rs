//! Explanation Tables (Gebaly, Agrawal, Golab, Korn, Srivastava — VLDB'15,
//! the paper's \[19\]) — the `ET` comparator of §5.5.
//!
//! ET summarizes a relation with a binary outcome attribute by a small set
//! of patterns (conjunctions of `attr = value`) chosen greedily to
//! maximize *information gain*: each chosen pattern updates a
//! maximum-entropy-style estimate of the per-row outcome probability, and
//! the next pattern is the one whose actual outcome distribution diverges
//! most from the current estimate. Candidates come from the LCA meets of a
//! size-`s` sample — which is why ET's runtime grows quadratically with
//! the sample size, the effect Fig. 11 measures.
//!
//! Numeric attributes are pre-bucketized into equi-depth ranges (the
//! App. A.1 note: "since ET doesn't accept numeric attributes, we did a
//! preprocessing step by converting numeric values into categorical
//! value" — patterns then read `minutes∈[31.78,49.63]`).

use std::collections::HashSet;

use cajade_graph::Apt;
use cajade_mining::{PatValue, Pattern, Pred, PredOp};
use cajade_ml::sampling::reservoir_sample;
use cajade_storage::{AttrKind, StringPool, Value};

/// ET configuration.
#[derive(Debug, Clone)]
pub struct EtConfig {
    /// LCA sample size (the Fig. 11 x-axis: 16, 64, 256, 512).
    pub sample_size: usize,
    /// Number of patterns to produce.
    pub num_patterns: usize,
    /// Buckets per numeric attribute for pre-bucketization.
    pub num_buckets: usize,
    /// Sampling seed.
    pub seed: u64,
}

impl Default for EtConfig {
    fn default() -> Self {
        Self {
            sample_size: 64,
            num_patterns: 20,
            num_buckets: 4,
            seed: 0xE7,
        }
    }
}

/// One ET pattern with its statistics.
#[derive(Debug, Clone)]
pub struct EtPattern {
    /// Conjunction of (field, bucketized value) predicates.
    pub pattern: Pattern,
    /// Rows covered.
    pub support: usize,
    /// Observed positive-outcome rate among covered rows.
    pub outcome_rate: f64,
    /// Information gain at selection time.
    pub gain: f64,
    /// Human-readable description (bucket ranges rendered like App. A.1).
    pub description: String,
}

/// A fitted explanation table.
#[derive(Debug)]
pub struct ExplanationTables {
    /// Selected patterns in selection order.
    pub patterns: Vec<EtPattern>,
}

/// Internal bucketized view of the APT: every attribute becomes
/// categorical (numeric ones via equi-depth bucket codes).
struct Bucketized {
    /// codes[field][row]: bucket / category code (u32::MAX = NULL).
    codes: Vec<Vec<u32>>,
    /// Per field: bucket boundaries (numeric) for rendering.
    bounds: Vec<Option<Vec<f64>>>,
    fields: Vec<usize>,
    num_rows: usize,
}

impl ExplanationTables {
    /// Fits an explanation table for `outcome` (one bool per APT row).
    pub fn fit(apt: &Apt, outcome: &[bool], cfg: &EtConfig) -> ExplanationTables {
        assert_eq!(outcome.len(), apt.num_rows);
        let b = bucketize(apt, cfg.num_buckets);
        let global_rate = mean_bool(outcome);

        // LCA candidates from a sample (quadratic in sample size).
        let sample = reservoir_sample(b.num_rows, cfg.sample_size, cfg.seed);
        let mut seen: HashSet<Vec<(usize, u32)>> = HashSet::new();
        let mut candidates: Vec<Vec<(usize, u32)>> = Vec::new();
        for i in 0..sample.len() {
            for j in (i + 1)..sample.len() {
                let mut meet = Vec::new();
                for (k, _f) in b.fields.iter().enumerate() {
                    let a = b.codes[k][sample[i]];
                    let c = b.codes[k][sample[j]];
                    if a != u32::MAX && a == c {
                        meet.push((k, a));
                    }
                }
                if !meet.is_empty() && seen.insert(meet.clone()) {
                    candidates.push(meet);
                }
            }
        }

        // Per-row outcome estimate, refined greedily.
        let mut estimate = vec![global_rate; b.num_rows];
        let mut patterns = Vec::new();
        let mut used: HashSet<usize> = HashSet::new();

        for _ in 0..cfg.num_patterns {
            let mut best: Option<(usize, f64, usize, f64)> = None; // (cand, gain, support, rate)
            for (ci, cand) in candidates.iter().enumerate() {
                if used.contains(&ci) {
                    continue;
                }
                // Covered rows; actual rate; KL-style gain vs estimate.
                let mut support = 0usize;
                let mut pos = 0usize;
                let mut est_sum = 0.0;
                for row in 0..b.num_rows {
                    if covers(&b, cand, row) {
                        support += 1;
                        pos += outcome[row] as usize;
                        est_sum += estimate[row];
                    }
                }
                if support == 0 {
                    continue;
                }
                let actual = pos as f64 / support as f64;
                let est = est_sum / support as f64;
                let gain = support as f64 * kl_bernoulli(actual, est);
                if best.is_none_or(|(_, g, _, _)| gain > g) {
                    best = Some((ci, gain, support, actual));
                }
            }
            let Some((ci, gain, support, rate)) = best else {
                break;
            };
            used.insert(ci);
            // Update estimates of covered rows toward the observed rate.
            #[allow(clippy::needless_range_loop)] // row indexes codes and estimates together
            for row in 0..b.num_rows {
                if covers(&b, &candidates[ci], row) {
                    estimate[row] = rate;
                }
            }
            patterns.push(EtPattern {
                pattern: to_pattern(&b, &candidates[ci]),
                support,
                outcome_rate: rate,
                gain,
                description: String::new(), // rendered on demand
            });
        }

        ExplanationTables { patterns }
    }

    /// Renders all patterns in the App.-A.1 style
    /// (`minutes∈[31.78,49.63] ∧ player_name∈Draymond Green`).
    pub fn render(&self, apt: &Apt, pool: &StringPool, cfg: &EtConfig) -> Vec<String> {
        let b = bucketize(apt, cfg.num_buckets);
        self.patterns
            .iter()
            .map(|p| render_pattern(&b, apt, pool, &p.pattern))
            .collect()
    }
}

fn mean_bool(xs: &[bool]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().filter(|&&x| x).count() as f64 / xs.len() as f64
}

/// KL divergence between Bernoulli(actual) and Bernoulli(estimate).
fn kl_bernoulli(p: f64, q: f64) -> f64 {
    let q = q.clamp(1e-9, 1.0 - 1e-9);
    let term = |a: f64, b: f64| if a <= 0.0 { 0.0 } else { a * (a / b).ln() };
    term(p, q) + term(1.0 - p, 1.0 - q)
}

fn bucketize(apt: &Apt, num_buckets: usize) -> Bucketized {
    let fields = apt.pattern_fields();
    let mut codes = Vec::with_capacity(fields.len());
    let mut bounds = Vec::with_capacity(fields.len());
    for &f in &fields {
        match apt.fields[f].kind {
            AttrKind::Categorical => {
                let mut map = std::collections::HashMap::new();
                let col: Vec<u32> = (0..apt.num_rows)
                    .map(|r| match apt.value(r, f) {
                        Value::Null => u32::MAX,
                        v => {
                            let key = PatValue::from_value(&v).unwrap();
                            let next = map.len() as u32;
                            *map.entry(key).or_insert(next)
                        }
                    })
                    .collect();
                codes.push(col);
                bounds.push(None);
            }
            AttrKind::Numeric => {
                let mut vals: Vec<f64> = (0..apt.num_rows)
                    .filter_map(|r| apt.columns[f].f64_at(r))
                    .collect();
                vals.sort_by(|a, b| a.total_cmp(b));
                vals.dedup();
                // Equi-depth boundaries (num_buckets+1 edges).
                let edges: Vec<f64> = if vals.is_empty() {
                    vec![0.0, 0.0]
                } else {
                    (0..=num_buckets)
                        .map(|i| {
                            let q = i as f64 / num_buckets as f64;
                            vals[((vals.len() - 1) as f64 * q).round() as usize]
                        })
                        .collect()
                };
                let col: Vec<u32> = (0..apt.num_rows)
                    .map(|r| match apt.columns[f].f64_at(r) {
                        None => u32::MAX,
                        Some(x) => {
                            let mut bkt = 0u32;
                            for (bi, w) in edges.windows(2).enumerate() {
                                if x >= w[0] && (x <= w[1] || bi == edges.len() - 2) {
                                    bkt = bi as u32;
                                    break;
                                }
                            }
                            bkt
                        }
                    })
                    .collect();
                codes.push(col);
                bounds.push(Some(edges));
            }
        }
    }
    Bucketized {
        codes,
        bounds,
        fields,
        num_rows: apt.num_rows,
    }
}

fn covers(b: &Bucketized, cand: &[(usize, u32)], row: usize) -> bool {
    cand.iter().all(|&(k, v)| b.codes[k][row] == v)
}

/// Stores the candidate as a [`Pattern`] (bucket codes as Int constants on
/// the local field index) — only used as an identity/debug carrier.
fn to_pattern(b: &Bucketized, cand: &[(usize, u32)]) -> Pattern {
    Pattern::from_preds(
        cand.iter()
            .map(|&(k, v)| {
                (
                    b.fields[k],
                    Pred {
                        op: PredOp::Eq,
                        value: PatValue::Int(v as i64),
                    },
                )
            })
            .collect(),
    )
}

fn render_pattern(b: &Bucketized, apt: &Apt, pool: &StringPool, pattern: &Pattern) -> String {
    pattern
        .preds()
        .iter()
        .map(|(field, pred)| {
            let k = b.fields.iter().position(|f| f == field).unwrap();
            let name = &apt.fields[*field].name;
            let code = match pred.value {
                PatValue::Int(i) => i as usize,
                _ => 0,
            };
            match &b.bounds[k] {
                Some(edges) => {
                    let lo = edges[code.min(edges.len() - 2)];
                    let hi = edges[(code + 1).min(edges.len() - 1)];
                    format!("{name}∈[{lo},{hi}]")
                }
                None => {
                    // Recover a representative original value for the code.
                    let mut repr = String::from("?");
                    for r in 0..b.num_rows {
                        if b.codes[k][r] == code as u32 {
                            repr = apt.value(r, *field).render(pool);
                            break;
                        }
                    }
                    format!("{name}∈{repr}")
                }
            }
        })
        .collect::<Vec<_>>()
        .join(" ∧ ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cajade_graph::JoinGraph;
    use cajade_query::{parse_sql, ProvenanceTable};
    use cajade_storage::{DataType, Database, SchemaBuilder};

    /// Outcome = (cat == 'hot') mostly; numeric `x` mildly informative.
    fn fixture() -> (Database, Apt, Vec<bool>) {
        let mut db = Database::new("et");
        db.create_table(
            SchemaBuilder::new("t")
                .column_pk("id", DataType::Int, AttrKind::Categorical)
                .column("grp", DataType::Str, AttrKind::Categorical)
                .column("cat", DataType::Str, AttrKind::Categorical)
                .column("x", DataType::Int, AttrKind::Numeric)
                .build(),
        )
        .unwrap();
        let g = db.intern("g");
        let hot = db.intern("hot");
        let cold = db.intern("cold");
        for i in 0..200i64 {
            let c = if i % 2 == 0 { hot } else { cold };
            db.table_mut("t")
                .unwrap()
                .push_row(vec![
                    Value::Int(i),
                    Value::Str(g),
                    Value::Str(c),
                    Value::Int(i % 50),
                ])
                .unwrap();
        }
        let q = parse_sql("SELECT count(*) AS c, grp FROM t GROUP BY grp").unwrap();
        let pt = ProvenanceTable::compute(&db, &q).unwrap();
        let apt = Apt::materialize(&db, &pt, &JoinGraph::pt_only()).unwrap();
        let hot_field = apt.field_index("prov_t_cat").unwrap();
        let outcome: Vec<bool> = (0..apt.num_rows)
            .map(|r| apt.value(r, hot_field) == Value::Str(hot))
            .collect();
        (db, apt, outcome)
    }

    #[test]
    fn finds_the_dominant_pattern_first() {
        let (db, apt, outcome) = fixture();
        let cfg = EtConfig {
            sample_size: 40,
            num_patterns: 5,
            ..Default::default()
        };
        let et = ExplanationTables::fit(&apt, &outcome, &cfg);
        assert!(!et.patterns.is_empty());
        let rendered = et.render(&apt, db.pool(), &cfg);
        // The top pattern should isolate the hot/cold attribute with a
        // near-pure outcome rate.
        let first = &et.patterns[0];
        assert!(
            first.outcome_rate > 0.95 || first.outcome_rate < 0.05,
            "rate {} pattern {}",
            first.outcome_rate,
            rendered[0]
        );
        assert!(rendered[0].contains("prov_t_cat"), "{}", rendered[0]);
    }

    #[test]
    fn gains_are_nonincreasing_in_spirit() {
        let (_db, apt, outcome) = fixture();
        let et = ExplanationTables::fit(
            &apt,
            &outcome,
            &EtConfig {
                sample_size: 40,
                num_patterns: 8,
                ..Default::default()
            },
        );
        // The first gain dominates (greedy on a strong signal).
        assert!(et.patterns[0].gain >= et.patterns.last().unwrap().gain);
    }

    #[test]
    fn numeric_buckets_render_as_ranges() {
        let (db, apt, outcome) = fixture();
        let cfg = EtConfig {
            sample_size: 60,
            num_patterns: 20,
            ..Default::default()
        };
        let et = ExplanationTables::fit(&apt, &outcome, &cfg);
        let rendered = et.render(&apt, db.pool(), &cfg);
        assert!(
            rendered.iter().any(|r| r.contains("∈[")),
            "some bucketized numeric pattern expected: {rendered:?}"
        );
    }

    #[test]
    fn sample_size_bounds_candidates() {
        let (_db, apt, outcome) = fixture();
        // A sample of 2 yields at most one candidate meet.
        let et = ExplanationTables::fit(
            &apt,
            &outcome,
            &EtConfig {
                sample_size: 2,
                num_patterns: 10,
                ..Default::default()
            },
        );
        assert!(et.patterns.len() <= 1);
    }

    #[test]
    fn empty_outcome_is_handled() {
        let (_db, apt, _) = fixture();
        let outcome = vec![false; apt.num_rows];
        let et = ExplanationTables::fit(&apt, &outcome, &EtConfig::default());
        // All-false outcome: gains are ~0 but the fit must not panic.
        assert!(et.patterns.iter().all(|p| p.outcome_rate == 0.0));
    }
}
