//! # cajade-baselines
//!
//! Re-implementations of the comparator systems of the paper's evaluation:
//!
//! * [`explanation_tables`] — Explanation Tables \[Gebaly et al., VLDB'15\]
//!   (the `ET` arm of §5.5 / Fig. 11 and the App. A.1 pattern listing):
//!   greedy information-gain summaries of a binary outcome over
//!   categorical attributes, with LCA candidates from a size-`s` sample
//!   and numeric pre-bucketization.
//! * [`cape`] — CAPE \[Miao et al., SIGMOD'19\] (§5.6 / Fig. 13):
//!   regression-based *counterbalance* explanations for one outlier point
//!   and a direction; returns similar outliers in the opposite direction.
//! * [`provenance_only`] — CaJaDE restricted to the PT-only join graph:
//!   the "provenance-based explanations" arm of the user study (Table 7).

#![warn(missing_docs)]

pub mod cape;
pub mod explanation_tables;
pub mod provenance_only;

pub use cape::{explain_outlier, CapeExplanation, CapeQuestion, Direction};
pub use explanation_tables::{EtConfig, EtPattern, ExplanationTables};
pub use provenance_only::provenance_only_explanations;
