//! CAPE-style counterbalance explanations (Miao, Zeng, Glavic, Roy —
//! SIGMOD'19, the paper's \[34\]) for the §5.6 comparison.
//!
//! CAPE explains an aggregate value that is surprisingly high (low) by
//! finding *counterbalances*: similar points that are surprisingly low
//! (high) with respect to a learned pattern. Following §5.6's setup, the
//! pattern here is a linear trend of the aggregate over the group
//! sequence; the user question is one outlier point plus a direction, and
//! the explanations are the top-k opposite-direction outliers — e.g. "GSW
//! won unusually *many* games in 2015-16" is counterbalanced by seasons
//! with unusually *few* wins (Fig. 13).

use cajade_storage::{Database, Value};

use cajade_query::QueryResult;

/// Direction of the user's surprise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// The value is surprisingly high.
    High,
    /// The value is surprisingly low.
    Low,
}

/// A CAPE user question: one output tuple + a direction.
#[derive(Debug, Clone)]
pub struct CapeQuestion {
    /// Row index in the query result.
    pub row: usize,
    /// Whether the user finds the value high or low.
    pub direction: Direction,
}

/// One counterbalance explanation.
#[derive(Debug, Clone)]
pub struct CapeExplanation {
    /// Row index of the counterbalancing output tuple.
    pub row: usize,
    /// Rendered group key (e.g. `(GSW, 2013-14, 51)`).
    pub rendered: String,
    /// The counterbalance's residual against the fitted trend (sign is
    /// opposite to the question's direction).
    pub residual: f64,
}

/// Produces the top-k counterbalances for `question` over the aggregate
/// column `agg_col` of `result`, ordering groups by their position in the
/// result (the paper's season sequence).
pub fn explain_outlier(
    db: &Database,
    result: &QueryResult,
    agg_col: &str,
    question: &CapeQuestion,
    k: usize,
) -> Vec<CapeExplanation> {
    let n = result.num_rows();
    let agg_idx = result
        .table
        .schema()
        .field_index(agg_col)
        .expect("aggregate column exists");
    let ys: Vec<f64> = (0..n)
        .map(|r| result.table.value(r, agg_idx).as_f64().unwrap_or(f64::NAN))
        .collect();

    // Fit y = a + b·x on all points except the question's.
    let pts: Vec<(f64, f64)> = ys
        .iter()
        .enumerate()
        .filter(|(i, y)| *i != question.row && y.is_finite())
        .map(|(i, &y)| (i as f64, y))
        .collect();
    let (a, b) = linear_fit(&pts);

    // Residuals; counterbalances have the opposite sign.
    let mut counter: Vec<(usize, f64)> = ys
        .iter()
        .enumerate()
        .filter(|(i, y)| *i != question.row && y.is_finite())
        .map(|(i, &y)| (i, y - (a + b * i as f64)))
        .filter(|(_, res)| match question.direction {
            Direction::High => *res < 0.0,
            Direction::Low => *res > 0.0,
        })
        .collect();
    counter.sort_by(|x, y| y.1.abs().total_cmp(&x.1.abs()));
    counter.truncate(k);

    counter
        .into_iter()
        .map(|(row, residual)| CapeExplanation {
            row,
            rendered: render_row(db, result, row),
            residual,
        })
        .collect()
}

/// Least-squares line through `pts`; degenerate inputs give a flat line.
fn linear_fit(pts: &[(f64, f64)]) -> (f64, f64) {
    let n = pts.len() as f64;
    if pts.len() < 2 {
        return (pts.first().map(|p| p.1).unwrap_or(0.0), 0.0);
    }
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return (sy / n, 0.0);
    }
    let b = (n * sxy - sx * sy) / denom;
    let a = (sy - b * sx) / n;
    (a, b)
}

fn render_row(db: &Database, result: &QueryResult, row: usize) -> String {
    let schema = result.table.schema();
    let cells: Vec<String> = (0..schema.arity())
        .map(|c| match result.table.value(row, c) {
            Value::Str(id) => db.resolve(id).to_string(),
            v => v.render(db.pool()),
        })
        .collect();
    format!("({})", cells.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cajade_query::{execute, parse_sql};
    use cajade_storage::{AttrKind, DataType, SchemaBuilder};

    /// Series with a clear upward trend, one high outlier (index 5) and
    /// two low outliers (indices 2 and 7).
    fn fixture() -> (Database, QueryResult) {
        let mut db = Database::new("cape");
        db.create_table(
            SchemaBuilder::new("t")
                .column_pk("id", DataType::Int, AttrKind::Categorical)
                .column("season", DataType::Str, AttrKind::Categorical)
                .build(),
        )
        .unwrap();
        // wins per season: trend ~30+2s with planted outliers.
        let wins = [30, 32, 14, 36, 38, 70, 42, 22, 46, 48];
        for (s, &w) in wins.iter().enumerate() {
            let name = db.intern(&format!("s{s:02}"));
            for i in 0..w {
                db.table_mut("t")
                    .unwrap()
                    .push_row(vec![Value::Int((s * 1000 + i) as i64), Value::Str(name)])
                    .unwrap();
            }
        }
        let q = parse_sql("SELECT count(*) AS win, season FROM t GROUP BY season").unwrap();
        let r = execute(&db, &q).unwrap();
        (db, r)
    }

    #[test]
    fn high_outlier_gets_low_counterbalances() {
        let (db, r) = fixture();
        let high_row = r.find_row(&db, &[("season", "s05")]).unwrap();
        let expl = explain_outlier(
            &db,
            &r,
            "win",
            &CapeQuestion {
                row: high_row,
                direction: Direction::High,
            },
            3,
        );
        assert!(!expl.is_empty());
        // The strongest counterbalances are the planted low seasons.
        let top: Vec<&str> = expl
            .iter()
            .take(2)
            .map(|e| {
                if e.rendered.contains("s02") {
                    "s02"
                } else if e.rendered.contains("s07") {
                    "s07"
                } else {
                    "?"
                }
            })
            .collect();
        assert!(top.contains(&"s02") && top.contains(&"s07"), "{expl:?}");
        assert!(expl.iter().all(|e| e.residual < 0.0));
    }

    #[test]
    fn low_outlier_gets_high_counterbalances() {
        let (db, r) = fixture();
        let low_row = r.find_row(&db, &[("season", "s02")]).unwrap();
        let expl = explain_outlier(
            &db,
            &r,
            "win",
            &CapeQuestion {
                row: low_row,
                direction: Direction::Low,
            },
            2,
        );
        assert!(expl[0].rendered.contains("s05"), "{expl:?}");
        assert!(expl.iter().all(|e| e.residual > 0.0));
    }

    #[test]
    fn question_row_never_returned() {
        let (db, r) = fixture();
        let row = r.find_row(&db, &[("season", "s05")]).unwrap();
        let expl = explain_outlier(
            &db,
            &r,
            "win",
            &CapeQuestion {
                row,
                direction: Direction::High,
            },
            100,
        );
        assert!(expl.iter().all(|e| e.row != row));
    }

    #[test]
    fn linear_fit_recovers_line() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 + 2.0 * i as f64)).collect();
        let (a, b) = linear_fit(&pts);
        assert!((a - 3.0).abs() < 1e-9);
        assert!((b - 2.0).abs() < 1e-9);
        // Degenerate cases.
        assert_eq!(linear_fit(&[]), (0.0, 0.0));
        assert_eq!(linear_fit(&[(5.0, 7.0)]), (7.0, 0.0));
    }
}
