//! End-to-end MIMIC integration: the Table-6 correlations surface as
//! explanations for the insurance death-rate question.

use cajade::prelude::*;

fn mimic() -> cajade::datagen::GeneratedDb {
    cajade::datagen::mimic::generate(MimicConfig {
        admissions: 1000,
        seed: 11,
    })
}

fn death_rate_query() -> Query {
    parse_sql(
        "SELECT insurance, 1.0*SUM(hospital_expire_flag)/COUNT(*) AS death_rate \
         FROM admissions GROUP BY insurance",
    )
    .unwrap()
}

#[test]
fn medicare_vs_private_explanations() {
    let gen = mimic();
    let mut params = Params::fast();
    params.max_edges = 2;
    params.mining.sel_attr = cajade::core::SelAttr::Count(6);
    let session = ExplanationSession::new(&gen.db, &gen.schema_graph, params);
    let out = session
        .explain_between(
            &death_rate_query(),
            &[("insurance", "Medicare")],
            &[("insurance", "Private")],
        )
        .unwrap();
    assert!(!out.explanations.is_empty());

    // The planted context must be visible among the top explanations:
    // age (via patients_admit_info), emergency admissions, expire flags,
    // or stay lengths — the Table-6 shape.
    let rendered: Vec<String> = out.explanations.iter().map(|e| e.render_line()).collect();
    let context_hit = out.explanations.iter().any(|e| {
        e.preds.iter().any(|(a, _, _)| {
            a.contains("age")
                || a.contains("admission__type")
                || a.contains("expire")
                || a.contains("stay__length")
                || a.contains("los")
        })
    });
    assert!(
        context_hit,
        "expected Table-6-shaped context: {rendered:#?}"
    );
}

#[test]
fn single_point_outlier_question() {
    // "Why is Self Pay's death rate high?" (single-point).
    let gen = mimic();
    let session = ExplanationSession::new(&gen.db, &gen.schema_graph, Params::fast());
    let out = session
        .explain(
            &death_rate_query(),
            &cajade::core::UserQuestion::single_point(&[("insurance", "Self Pay")]),
        )
        .unwrap();
    assert!(!out.explanations.is_empty());
    assert!(out
        .explanations
        .iter()
        .all(|e| e.primary.contains("Self Pay")));
}

#[test]
fn icu_stay_length_question() {
    // Q_mimic3: ICU stays grouped by los_group; why so many short stays?
    let gen = mimic();
    let q =
        parse_sql("SELECT COUNT(*) AS cnt, los_group FROM icustays GROUP BY los_group").unwrap();
    let result = cajade::query::execute(&gen.db, &q).unwrap();
    assert!(result.num_rows() >= 4, "los groups populated");

    let mut params = Params::fast();
    params.max_edges = 2;
    let session = ExplanationSession::new(&gen.db, &gen.schema_graph, params);
    let out = session
        .explain_between(&q, &[("los_group", "0-1")], &[("los_group", "x>8")])
        .unwrap();
    assert!(!out.explanations.is_empty());
    // Stay-length correlation should appear (hospital_stay_length tracks
    // ICU los by construction).
    let hit = out.explanations.iter().any(|e| {
        e.preds
            .iter()
            .any(|(a, _, _)| a.contains("stay__length") || a.contains("los"))
    });
    assert!(
        hit,
        "expected hospital-stay-length context: {:#?}",
        out.explanations
            .iter()
            .map(|e| e.render_line())
            .collect::<Vec<_>>()
    );
}

#[test]
fn diagnosis_chapter_death_rates() {
    // Q_mimic1: death rate by diagnosis chapter; chapter 2 vs 13.
    let gen = mimic();
    let q = parse_sql(
        "SELECT 1.0*SUM(a.hospital_expire_flag)/COUNT(*) AS death_rate, d.chapter \
         FROM admissions a, diagnoses d \
         WHERE a.hadm_id = d.hadm_id GROUP BY d.chapter",
    )
    .unwrap();
    let mut params = Params::fast();
    params.max_edges = 1; // two-table query: keep the graph fan-out small
    let session = ExplanationSession::new(&gen.db, &gen.schema_graph, params);
    let out = session
        .explain_between(&q, &[("chapter", "2")], &[("chapter", "13")])
        .unwrap();
    assert!(!out.explanations.is_empty());
}
