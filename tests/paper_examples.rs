//! Regression tests pinned to the paper's running example: the Figure-1
//! tables, Example 2's provenance partition, Example 4's APT (Figure 4),
//! and the Example-5 star-player pattern Φ₁.

use cajade::graph::{Apt, JoinCond, SchemaGraph};
use cajade::mining::{PatValue, Pattern, Pred, PredOp, Question, Scorer};
use cajade::prelude::*;
use cajade::query::ProvenanceTable;
use cajade_core::UserQuestion;

/// Builds the Figure-1 database: `game` (1a) and `player_game_scoring`
/// (1c), with the Fig.-3 schema-graph edge e1 (join on the game key).
fn figure1_db() -> (Database, SchemaGraph) {
    let mut db = Database::new("figure1");
    db.create_table(
        cajade::storage::SchemaBuilder::new("game")
            .column_pk("year", DataType::Int, AttrKind::Categorical)
            .column_pk("month", DataType::Int, AttrKind::Categorical)
            .column_pk("day", DataType::Int, AttrKind::Categorical)
            .column_pk("home", DataType::Str, AttrKind::Categorical)
            .column("away", DataType::Str, AttrKind::Categorical)
            .column("home_pts", DataType::Int, AttrKind::Numeric)
            .column("away_pts", DataType::Int, AttrKind::Numeric)
            .column("winner", DataType::Str, AttrKind::Categorical)
            .column("season", DataType::Str, AttrKind::Categorical)
            .build(),
    )
    .unwrap();
    db.create_table(
        cajade::storage::SchemaBuilder::new("player_game_scoring")
            .column_pk("player", DataType::Str, AttrKind::Categorical)
            .column_pk("year", DataType::Int, AttrKind::Categorical)
            .column_pk("month", DataType::Int, AttrKind::Categorical)
            .column_pk("day", DataType::Int, AttrKind::Categorical)
            .column_pk("home", DataType::Str, AttrKind::Categorical)
            .column("pts", DataType::Int, AttrKind::Numeric)
            .build(),
    )
    .unwrap();

    // Figure 1a: g1..g5.
    let games = [
        (2013, 1, 2, "MIA", "DAL", 119, 109, "MIA", "2012-13"),
        (2012, 12, 5, "DET", "GSW", 97, 104, "GSW", "2012-13"),
        (2015, 10, 27, "GSW", "NOP", 111, 95, "GSW", "2015-16"),
        (2014, 1, 5, "GSW", "WAS", 96, 112, "GSW", "2013-14"),
        (2016, 1, 22, "GSW", "IND", 122, 110, "GSW", "2015-16"),
    ];
    for (y, m, d, h, a, hp, ap, w, s) in games {
        let row = vec![
            Value::Int(y),
            Value::Int(m),
            Value::Int(d),
            Value::Str(db.intern(h)),
            Value::Str(db.intern(a)),
            Value::Int(hp),
            Value::Int(ap),
            Value::Str(db.intern(w)),
            Value::Str(db.intern(s)),
        ];
        db.table_mut("game").unwrap().push_row(row).unwrap();
    }
    // Figure 1c: p1..p6.
    let scoring = [
        ("S. Curry", 2012, 12, 5, "DET", 22),
        ("S. Curry", 2015, 10, 27, "GSW", 40),
        ("S. Curry", 2016, 1, 22, "GSW", 39),
        ("K. Thompson", 2012, 12, 5, "DET", 27),
        ("K. Thompson", 2016, 1, 22, "GSW", 18), // p5 home fixed to the game key
        ("D. Green", 2012, 12, 5, "DET", 2),
    ];
    for (p, y, m, d, h, pts) in scoring {
        let row = vec![
            Value::Str(db.intern(p)),
            Value::Int(y),
            Value::Int(m),
            Value::Int(d),
            Value::Str(db.intern(h)),
            Value::Int(pts),
        ];
        db.table_mut("player_game_scoring")
            .unwrap()
            .push_row(row)
            .unwrap();
    }

    // Fig. 3's edge e1: PT(game) ⋈ player_game_scoring on the game key.
    let mut sg = SchemaGraph::new();
    sg.add_condition(
        "game",
        "player_game_scoring",
        JoinCond::on(&[
            ("year", "year"),
            ("month", "month"),
            ("day", "day"),
            ("home", "home"),
        ]),
    );
    sg.validate(&db).unwrap();
    (db, sg)
}

fn q1() -> Query {
    parse_sql(
        "SELECT winner AS team, season, COUNT(*) AS win \
         FROM game WHERE winner = 'GSW' GROUP BY winner, season",
    )
    .unwrap()
}

/// Example 2: PT(Q1,D) = {g2,g3,g4,g5}; PT(Q1,D,t1) = {g2};
/// PT(Q1,D,t2) = {g3,g5}.
#[test]
fn example2_provenance() {
    let (db, _sg) = figure1_db();
    let pt = ProvenanceTable::compute(&db, &q1()).unwrap();
    assert_eq!(pt.num_rows, 4);
    let t1 = pt.find_group(&db, &q1(), &[("season", "2012-13")]).unwrap();
    let t2 = pt.find_group(&db, &q1(), &[("season", "2015-16")]).unwrap();
    assert_eq!(pt.group_size(t1), 1);
    assert_eq!(pt.group_size(t2), 2);
}

/// Example 4 / Figure 4: APT(Q1, D, Ω1) has exactly the six rows shown.
#[test]
fn example4_apt_matches_figure4() {
    let (db, sg) = figure1_db();
    let pt = ProvenanceTable::compute(&db, &q1()).unwrap();
    // Ω1: PT — player_game_scoring on the e1 condition.
    // Note: on this *simplified* Figure-1 schema Ω1 fails §4's PK-coverage
    // check (no `player` table covers scoring's `player` key — the full
    // Fig.-5 schema joins player_game_stats–player for exactly that
    // reason), so we materialize the enumerated graph directly.
    let graphs =
        cajade::graph::enumerate_join_graphs(&sg, &db, &q1(), pt.num_rows, &Default::default())
            .unwrap();
    let omega1 = graphs
        .iter()
        .find(|g| g.graph.num_edges() == 1)
        .expect("Ω1 enumerated");
    let apt = Apt::materialize(&db, &pt, &omega1.graph).unwrap();
    assert_eq!(apt.num_rows, 6, "Figure 4 shows six APT rows");
    // Join columns deduplicated (Definition 4): scoring's year is gone,
    // pts survives.
    assert!(apt.field_index("player_game_scoring.pts").is_some());
    assert!(apt.field_index("player_game_scoring.year").is_none());
}

/// Example 5: Φ1 = (player = 'S. Curry', pts ≥ 23) covers both 2015-16
/// provenance rows and neither 2012-13 row (on the Figure-1 sample).
#[test]
fn example5_star_player_pattern() {
    let (db, sg) = figure1_db();
    let pt = ProvenanceTable::compute(&db, &q1()).unwrap();
    let graphs =
        cajade::graph::enumerate_join_graphs(&sg, &db, &q1(), pt.num_rows, &Default::default())
            .unwrap();
    let omega1 = graphs.iter().find(|g| g.graph.num_edges() == 1).unwrap();
    let apt = Apt::materialize(&db, &pt, &omega1.graph).unwrap();

    let player = apt.field_index("player_game_scoring.player").unwrap();
    let pts = apt.field_index("player_game_scoring.pts").unwrap();
    let curry = db.lookup_str("S. Curry").unwrap();
    let phi1 = Pattern::from_preds(vec![
        (
            player,
            Pred {
                op: PredOp::Eq,
                value: PatValue::Str(curry.0),
            },
        ),
        (
            pts,
            Pred {
                op: PredOp::Ge,
                value: PatValue::Int(23),
            },
        ),
    ]);

    let t1 = pt.find_group(&db, &q1(), &[("season", "2015-16")]).unwrap();
    let t2 = pt.find_group(&db, &q1(), &[("season", "2012-13")]).unwrap();
    let scorer = Scorer::exact(&apt, &pt);
    let m = scorer.score(&phi1, t1, Some(t2));
    // The paper's (58/73 vs 21/47) at full scale; on the Figure-1 sample:
    assert_eq!((m.tp, m.a1, m.fp, m.a2), (2, 2, 0, 1));
    assert_eq!(m.f_score, 1.0);
}

/// End-to-end: the session mines Φ1's shape from the Figure-1 data.
#[test]
fn session_rediscovers_phi1() {
    let (db, sg) = figure1_db();
    let mut params = Params::fast();
    params.mining.sel_attr = cajade::core::SelAttr::All;
    params.mining.lambda_recall = 0.5;
    params.check_pk_coverage = false; // simplified schema, see above
    let session = ExplanationSession::new(&db, &sg, params);
    let out = session
        .explain(
            &q1(),
            &UserQuestion::two_point(&[("season", "2015-16")], &[("season", "2012-13")]),
        )
        .unwrap();
    assert!(!out.explanations.is_empty());
    // Some top explanation references Curry or his points jump.
    let hit = out.explanations.iter().any(|e| {
        e.pattern_desc.contains("S. Curry")
            || e.preds
                .iter()
                .any(|(a, op, _)| a.contains("pts") && op == "≥")
    });
    assert!(
        hit,
        "expected a Φ1-shaped explanation, got: {:#?}",
        out.explanations
            .iter()
            .map(|e| e.render_line())
            .collect::<Vec<_>>()
    );
}

/// The question resolution path works through the session API too.
#[test]
fn question_uses_group_by_columns() {
    let (db, sg) = figure1_db();
    let session = ExplanationSession::new(&db, &sg, Params::fast());
    // `team` is an alias in SELECT; groups resolve by source column names.
    let err = session
        .explain(
            &q1(),
            &UserQuestion::two_point(&[("season", "1999-00")], &[("season", "2012-13")]),
        )
        .unwrap_err();
    assert!(matches!(err, cajade::core::CoreError::NoSuchOutputTuple(_)));
}

/// Single-point question on the Figure-1 data: explain 2015-16 vs rest.
#[test]
fn single_point_on_figure1() {
    let (db, sg) = figure1_db();
    let pt = ProvenanceTable::compute(&db, &q1()).unwrap();
    let t2 = pt.find_group(&db, &q1(), &[("season", "2015-16")]).unwrap();
    let graphs =
        cajade::graph::enumerate_join_graphs(&sg, &db, &q1(), pt.num_rows, &Default::default())
            .unwrap();
    let omega1 = graphs.iter().find(|g| g.graph.num_edges() == 1).unwrap();
    let apt = Apt::materialize(&db, &pt, &omega1.graph).unwrap();
    let outcome = cajade::mining::mine_apt(
        &apt,
        &pt,
        &Question::SinglePoint { t: t2 },
        &cajade::mining::MiningParams {
            lambda_pat_samp: 1.0,
            lambda_f1_samp: 1.0,
            sel_attr: cajade::core::SelAttr::All,
            ..Default::default()
        },
    );
    assert!(!outcome.explanations.is_empty());
    for e in &outcome.explanations {
        assert_eq!(e.primary_group, t2);
        assert!(e.secondary_group.is_none());
    }
}
