//! Cross-crate baseline integration: Explanation Tables and CAPE against
//! the synthetic NBA data, and the provenance-only arm against CaJaDE.

use cajade::baselines::{
    explain_outlier, provenance_only_explanations, CapeQuestion, Direction, EtConfig,
    ExplanationTables,
};
use cajade::graph::{Apt, JoinGraph};
use cajade::mining::{MiningParams, Question, SelAttr};
use cajade::prelude::*;
use cajade::query::ProvenanceTable;

fn setup() -> (cajade::datagen::GeneratedDb, Query) {
    let gen = cajade::datagen::nba::generate(NbaConfig::tiny());
    let q = parse_sql(
        "SELECT COUNT(*) AS win, s.season_name \
         FROM team t, game g, season s \
         WHERE t.team_id = g.winner_id AND g.season_id = s.season_id AND t.team = 'GSW' \
         GROUP BY s.season_name",
    )
    .unwrap();
    (gen, q)
}

#[test]
fn et_runtime_grows_with_sample_size() {
    let (gen, q) = setup();
    let pt = ProvenanceTable::compute(&gen.db, &q).unwrap();
    let apt = Apt::materialize(&gen.db, &pt, &JoinGraph::pt_only()).unwrap();
    let t1 = pt
        .find_group(&gen.db, &q, &[("season_name", "2015-16")])
        .unwrap();
    let outcome: Vec<bool> = (0..apt.num_rows)
        .map(|r| pt.group_of[apt.pt_row[r] as usize] as usize == t1)
        .collect();

    let mut times = Vec::new();
    for sample_size in [16usize, 128] {
        let t0 = std::time::Instant::now();
        let et = ExplanationTables::fit(
            &apt,
            &outcome,
            &EtConfig {
                sample_size,
                num_patterns: 10,
                ..Default::default()
            },
        );
        times.push(t0.elapsed());
        assert!(!et.patterns.is_empty());
    }
    // The Fig.-11 shape: 8× the sample ⇒ much more than 2× the time.
    // (Generous bound: debug builds are noisy.)
    assert!(
        times[1] > times[0],
        "ET at 128 ({:?}) should exceed ET at 16 ({:?})",
        times[1],
        times[0]
    );
}

#[test]
fn cape_counterbalances_are_opposite_direction() {
    let (gen, q) = setup();
    let result = cajade::query::execute(&gen.db, &q).unwrap();
    let row = result
        .find_row(&gen.db, &[("season_name", "2015-16")])
        .unwrap();
    let expl = explain_outlier(
        &gen.db,
        &result,
        "win",
        &CapeQuestion {
            row,
            direction: Direction::High,
        },
        5,
    );
    assert!(!expl.is_empty());
    assert!(expl.iter().all(|e| e.residual < 0.0));
    // The weakest seasons of the planted story appear among them.
    assert!(
        expl.iter().any(|e| e.rendered.contains("2011-12")),
        "the 23-win season counterbalances the 73-win season: {expl:?}"
    );
}

#[test]
fn provenance_only_is_a_strict_subset_of_cajade_context() {
    let (gen, q) = setup();
    let pt = ProvenanceTable::compute(&gen.db, &q).unwrap();
    let t1 = pt
        .find_group(&gen.db, &q, &[("season_name", "2015-16")])
        .unwrap();
    let t2 = pt
        .find_group(&gen.db, &q, &[("season_name", "2012-13")])
        .unwrap();
    let params = MiningParams {
        sel_attr: SelAttr::Count(5),
        lambda_f1_samp: 1.0,
        lambda_pat_samp: 1.0,
        ..Default::default()
    };
    let (prov, apt) =
        provenance_only_explanations(&gen.db, &pt, &Question::TwoPoint { t1, t2 }, &params)
            .unwrap();
    assert!(!prov.is_empty());
    // Provenance-only never sees context tables: the PT-only APT exposes
    // exactly the accessed relations' attributes.
    assert!(apt.fields.iter().all(|f| f.from_pt));

    // The full session can reach attributes provenance-only cannot
    // (player stats, salaries, …).
    let session = ExplanationSession::new(&gen.db, &gen.schema_graph, Params::fast());
    let out = session
        .explain_between(
            &q,
            &[("season_name", "2015-16")],
            &[("season_name", "2012-13")],
        )
        .unwrap();
    let context_attrs: Vec<&String> = out
        .explanations
        .iter()
        .filter(|e| !e.from_pt_only)
        .flat_map(|e| e.preds.iter().map(|(a, _, _)| a))
        .collect();
    assert!(
        !context_attrs.is_empty(),
        "the session reaches beyond provenance"
    );
}

#[test]
fn et_patterns_carry_support_and_rate() {
    let (gen, q) = setup();
    let pt = ProvenanceTable::compute(&gen.db, &q).unwrap();
    let apt = Apt::materialize(&gen.db, &pt, &JoinGraph::pt_only()).unwrap();
    let outcome: Vec<bool> = (0..apt.num_rows).map(|r| r % 2 == 0).collect();
    let cfg = EtConfig {
        sample_size: 40,
        num_patterns: 6,
        ..Default::default()
    };
    let et = ExplanationTables::fit(&apt, &outcome, &cfg);
    for p in &et.patterns {
        assert!(p.support > 0);
        assert!((0.0..=1.0).contains(&p.outcome_rate));
        assert!(p.gain >= 0.0);
    }
    // Rendering produces one description per pattern.
    let rendered = et.render(&apt, gen.db.pool(), &cfg);
    assert_eq!(rendered.len(), et.patterns.len());
}
