//! End-to-end NBA integration: the session surfaces the planted story,
//! curation knobs work, and results are deterministic.

use cajade::prelude::*;
use cajade_core::UserQuestion;

fn nba() -> cajade::datagen::GeneratedDb {
    cajade::datagen::nba::generate(NbaConfig::tiny())
}

fn gsw_query() -> Query {
    parse_sql(
        "SELECT COUNT(*) AS win, s.season_name \
         FROM team t, game g, season s \
         WHERE t.team_id = g.winner_id AND g.season_id = s.season_id AND t.team = 'GSW' \
         GROUP BY s.season_name",
    )
    .unwrap()
}

#[test]
fn gsw_question_produces_context_explanations() {
    let gen = nba();
    let session = ExplanationSession::new(&gen.db, &gen.schema_graph, Params::fast());
    let out = session
        .explain_between(
            &gsw_query(),
            &[("season_name", "2015-16")],
            &[("season_name", "2012-13")],
        )
        .unwrap();
    assert!(out.explanations.len() >= 5);
    assert!(out.explanations.iter().any(|e| !e.from_pt_only));
    // Supports use the full |PT(t)| denominators.
    for e in &out.explanations {
        assert!(e.metrics.a1 > 0);
        assert!(e.metrics.tp <= e.metrics.a1);
        assert!(e.metrics.fp <= e.metrics.a2);
    }
}

#[test]
fn banned_attrs_remove_trivial_fd_restatements() {
    let gen = nba();
    let params = Params::fast().with_banned_attrs(&["season__id", "season_name", "season."]);
    let session = ExplanationSession::new(&gen.db, &gen.schema_graph, params);
    let out = session
        .explain_between(
            &gsw_query(),
            &[("season_name", "2015-16")],
            &[("season_name", "2012-13")],
        )
        .unwrap();
    assert!(!out.explanations.is_empty());
    for e in &out.explanations {
        for (attr, _, _) in &e.preds {
            assert!(
                !attr.contains("season__id") && !attr.contains("season_name"),
                "banned attribute leaked into {}",
                e.pattern_desc
            );
        }
    }
}

#[test]
fn fd_exclusion_supersedes_manual_ban_list() {
    // §6.2/§8 extension: with automatic FD exclusion on, attributes that
    // functionally determine the compared seasons (season ids, the season
    // name via context joins) never appear — without any ban list.
    let gen = nba();
    let params = Params::fast().with_fd_exclusion(true);
    let session = ExplanationSession::new(&gen.db, &gen.schema_graph, params);
    let out = session
        .explain_between(
            &gsw_query(),
            &[("season_name", "2015-16")],
            &[("season_name", "2012-13")],
        )
        .unwrap();
    assert!(!out.explanations.is_empty());
    for e in &out.explanations {
        for (attr, op, value) in &e.preds {
            // Equality on a season id / season name restates the group:
            // the FD check must have dropped those attributes.
            let restates = (attr.contains("season__id")
                || attr.contains("season_id")
                || attr.contains("season_name"))
                && op == "=";
            assert!(
                !restates,
                "FD restatement leaked: {attr} {op} {value} in {}",
                e.pattern_desc
            );
        }
    }
}

#[test]
fn draymond_green_salary_explanation() {
    // Q_nba1's headline: Green's 2015-16 vs 2016-17 difference aligns with
    // the planted salary jump (14 260 870 → 15 330 435).
    let gen = nba();
    let q = parse_sql(
        "SELECT AVG(points) AS avg_pts, s.season_name \
         FROM player p, player_game_stats pgs, game g, season s \
         WHERE p.player_id = pgs.player_id AND g.game_date = pgs.game_date \
           AND g.home_id = pgs.home_id AND s.season_id = g.season_id \
           AND p.player_name = 'Draymond Green' \
         GROUP BY s.season_name",
    )
    .unwrap();
    let mut params = Params::fast().with_banned_attrs(&["season__id", "season_name"]);
    params.max_edges = 2;
    params.mining.sel_attr = cajade::core::SelAttr::Count(6);
    let session = ExplanationSession::new(&gen.db, &gen.schema_graph, params);
    let out = session
        .explain_between(
            &q,
            &[("season_name", "2015-16")],
            &[("season_name", "2016-17")],
        )
        .unwrap();
    assert!(!out.explanations.is_empty());
    let salary_hit = out
        .explanations
        .iter()
        .any(|e| e.preds.iter().any(|(a, _, _)| a.contains("salary")));
    let stats_hit = out.explanations.iter().any(|e| {
        e.preds.iter().any(|(a, _, _)| {
            a.contains("minutes")
                || a.contains("usage")
                || a.contains("tspct")
                || a.contains("points")
        })
    });
    assert!(
        salary_hit || stats_hit,
        "expected salary- or stat-based context explanations, got {:#?}",
        out.explanations
            .iter()
            .map(|e| e.render_line())
            .collect::<Vec<_>>()
    );
}

#[test]
fn two_point_directions_are_asymmetric() {
    let gen = nba();
    let session = ExplanationSession::new(&gen.db, &gen.schema_graph, Params::fast());
    let out = session
        .explain_between(
            &gsw_query(),
            &[("season_name", "2015-16")],
            &[("season_name", "2012-13")],
        )
        .unwrap();
    // Both directions appear among the explanations (patterns covering t1
    // and patterns covering t2).
    let has_t1 = out
        .explanations
        .iter()
        .any(|e| e.primary.contains("2015-16"));
    let has_t2 = out
        .explanations
        .iter()
        .any(|e| e.primary.contains("2012-13"));
    assert!(has_t1 && has_t2);
}

#[test]
fn session_is_deterministic() {
    let gen = nba();
    let run = || {
        let session = ExplanationSession::new(&gen.db, &gen.schema_graph, Params::fast());
        session
            .explain(
                &gsw_query(),
                &UserQuestion::two_point(
                    &[("season_name", "2015-16")],
                    &[("season_name", "2012-13")],
                ),
            )
            .unwrap()
            .explanations
            .iter()
            .map(|e| e.render_line())
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn timings_and_stats_are_consistent() {
    let gen = nba();
    let session = ExplanationSession::new(&gen.db, &gen.schema_graph, Params::fast());
    let out = session
        .explain_between(
            &gsw_query(),
            &[("season_name", "2015-16")],
            &[("season_name", "2012-13")],
        )
        .unwrap();
    assert_eq!(out.apt_stats.len(), out.num_graphs_mined);
    assert!(out.num_graphs_enumerated >= out.num_graphs_mined);
    assert!(out.patterns_evaluated > 0);
    let rows = out.timings.breakdown_rows();
    assert_eq!(rows.len(), 9);
    let total: f64 = rows.iter().map(|(_, d)| d.as_secs_f64()).sum();
    assert!((total - out.timings.total().as_secs_f64()).abs() < 1e-9);
}

#[test]
fn scaled_db_still_explains() {
    let gen = cajade::datagen::nba::generate(NbaConfig {
        seasons: 8,
        games_per_team: 6,
        players_per_team: 5,
        rich_stats: false,
        seed: 9,
    });
    let scaled = cajade::datagen::scale::duplicate_scale(&gen, 2);
    let session = ExplanationSession::new(&scaled.db, &scaled.schema_graph, Params::fast());
    let out = session
        .explain_between(
            &gsw_query(),
            &[("season_name", "2015-16")],
            &[("season_name", "2012-13")],
        )
        .unwrap();
    assert!(!out.explanations.is_empty());
    // PT doubled relative to the unscaled run.
    let base = ExplanationSession::new(&gen.db, &gen.schema_graph, Params::fast())
        .explain_between(
            &gsw_query(),
            &[("season_name", "2015-16")],
            &[("season_name", "2012-13")],
        )
        .unwrap();
    assert_eq!(out.pt_rows, 2 * base.pt_rows);
}
