//! NaN-safety end to end: a CSV directory whose float columns contain
//! literal `NaN` / `inf` / `-inf` cells (all of which
//! `"…".parse::<f64>()` happily accepts, so ingestion delivers them into
//! the mining path) must complete `register_csv_dir` → `ask` without a
//! panic, produce the same ranked output on every run, and stay
//! bit-identical across the scalar and vectorized scoring engines.
//!
//! Before the NaN-safety sweep this fixture panicked in
//! `fragments::fragment_boundaries` (`partial_cmp(..).unwrap()` on the
//! first NaN cell of a selected numeric column).

use cajade::core::{Params, UserQuestion};
use cajade::ingest::IngestOptions;
use cajade::mining::ScoreEngine;
use cajade::service::{ExplanationService, ServiceConfig};

fn fixture_dir() -> String {
    format!("{}/tests/data/nan_csv", env!("CARGO_MANIFEST_DIR"))
}

const SQL: &str = "SELECT count(*) AS games, season FROM games GROUP BY season";

fn question() -> UserQuestion {
    UserQuestion::two_point(&[("season", "s2")], &[("season", "s1")])
}

/// One full register → ask pass; returns the comparable rendering of the
/// ranked explanations.
fn ask_with_engine(engine: ScoreEngine) -> Vec<String> {
    let service = ExplanationService::new(ServiceConfig::default());
    let (outcome, report) = service
        .register_csv_dir("nangames", fixture_dir(), &IngestOptions::default())
        .expect("ingest the NaN fixture");
    assert!(!outcome.replaced);
    assert_eq!(report.tables.len(), 2);

    let mut params = Params::paper();
    params.mining.engine = engine;
    let session = service
        .open_session_with_params("nangames", SQL, params)
        .unwrap();
    let answer = session.ask(&question()).expect("ask must not panic");
    assert!(
        !answer.result.explanations.is_empty(),
        "the planted points gap must yield explanations"
    );
    answer
        .result
        .explanations
        .iter()
        .map(|e| {
            format!(
                "{}|{}|{}|{:?}|{:.12}",
                e.pattern_desc,
                e.graph_structure,
                e.primary,
                (e.metrics.tp, e.metrics.a1, e.metrics.fp, e.metrics.a2),
                e.metrics.f_score
            )
        })
        .collect()
}

#[test]
fn nan_cells_survive_register_ask_deterministically_across_engines() {
    let vectorized = ask_with_engine(ScoreEngine::Vectorized);
    let vectorized_again = ask_with_engine(ScoreEngine::Vectorized);
    assert_eq!(
        vectorized, vectorized_again,
        "repeated runs must rank identically"
    );

    let scalar = ask_with_engine(ScoreEngine::Scalar);
    assert_eq!(
        vectorized, scalar,
        "scalar and vectorized engines must agree bit for bit"
    );

    // The planted story survives the junk cells: season s2's points jump
    // shows up as a ≥-threshold pattern on the points column.
    assert!(
        vectorized
            .iter()
            .any(|e| e.contains("points") && e.contains("season=s2")),
        "expected a points-threshold explanation for s2: {vectorized:#?}"
    );
}
