//! Join discovery validated against ground truth: on the synthetic NBA
//! database the discovered inclusion dependencies must recover the
//! declared foreign keys (single-column ones — composite keys are out of
//! scope for containment-based discovery, as in Aurum/JOSIE).

use cajade::graph::{discover_joins, DiscoveryConfig};
use cajade::prelude::*;

#[test]
fn discovery_recovers_declared_nba_fks() {
    let gen = cajade::datagen::nba::generate(NbaConfig::tiny());
    let cands = discover_joins(&gen.db, &DiscoveryConfig::default());
    assert!(!cands.is_empty());

    // Ground truth: the single-column FKs the generator declared.
    let declared: Vec<(String, String, String, String)> = gen
        .db
        .foreign_keys()
        .iter()
        .filter(|fk| fk.from_cols.len() == 1)
        .map(|fk| {
            (
                fk.from_table.clone(),
                fk.from_cols[0].clone(),
                fk.to_table.clone(),
                fk.to_cols[0].clone(),
            )
        })
        .collect();
    assert!(!declared.is_empty());

    let mut missed = Vec::new();
    for (ft, fc, tt, tc) in &declared {
        let hit = cands.iter().any(|c| {
            &c.from_table == ft && &c.from_col == fc && &c.to_table == tt && &c.to_col == tc
        });
        if !hit {
            missed.push(format!("{ft}.{fc} → {tt}.{tc}"));
        }
    }
    // Containment-based discovery must recover the large majority of the
    // true single-column FKs (some may fall below the uniqueness gate when
    // the key table is tiny).
    let recovered = declared.len() - missed.len();
    assert!(
        recovered as f64 >= declared.len() as f64 * 0.8,
        "recovered {recovered}/{} declared FKs; missed: {missed:?}",
        declared.len()
    );

    // And every discovered candidate is a genuine containment.
    for c in &cands {
        assert!(c.containment >= 0.95, "{c:?}");
        assert!(c.to_uniqueness >= 0.9, "{c:?}");
    }
}

#[test]
fn discovery_is_deterministic() {
    let gen = cajade::datagen::nba::generate(NbaConfig::tiny());
    let a = discover_joins(&gen.db, &DiscoveryConfig::default());
    let b = discover_joins(&gen.db, &DiscoveryConfig::default());
    let render = |cs: &[cajade::graph::JoinCandidate]| -> Vec<String> {
        cs.iter()
            .map(|c| {
                format!(
                    "{}.{}→{}.{}",
                    c.from_table, c.from_col, c.to_table, c.to_col
                )
            })
            .collect()
    };
    assert_eq!(render(&a), render(&b));
}
