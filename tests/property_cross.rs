//! Cross-crate property tests: the executor against a nested-loop
//! reference implementation on random databases, and end-to-end metric
//! invariants.

use proptest::prelude::*;

use cajade::graph::{Apt, JoinGraph};
use cajade::mining::{PatValue, Pattern, Pred, PredOp, Scorer};
use cajade::prelude::*;
use cajade::query::ProvenanceTable;
use cajade::storage::SchemaBuilder;

/// Random two-table database: `fact(id, grp, key, x)` and `dim(key, y)`.
#[derive(Debug, Clone)]
struct RandomDb {
    fact: Vec<(i64, u8, i64, i64)>,
    dim: Vec<(i64, i64)>,
}

fn arb_db() -> impl Strategy<Value = RandomDb> {
    (
        proptest::collection::vec((0i64..50, 0u8..3, 0i64..8, -20i64..20), 1..40),
        proptest::collection::vec((0i64..8, -20i64..20), 0..16),
    )
        .prop_map(|(fact, dim)| RandomDb { fact, dim })
}

fn build(db_spec: &RandomDb) -> Database {
    let mut db = Database::new("prop");
    db.create_table(
        SchemaBuilder::new("fact")
            .column_pk("id", DataType::Int, AttrKind::Categorical)
            .column("grp", DataType::Str, AttrKind::Categorical)
            .column("key", DataType::Int, AttrKind::Categorical)
            .column("x", DataType::Int, AttrKind::Numeric)
            .build(),
    )
    .unwrap();
    db.create_table(
        SchemaBuilder::new("dim")
            .column_pk("key", DataType::Int, AttrKind::Categorical)
            .column("y", DataType::Int, AttrKind::Numeric)
            .build(),
    )
    .unwrap();
    let groups = ["a", "b", "c"].map(|g| db.intern(g));
    for (i, (id, grp, key, x)) in db_spec.fact.iter().enumerate() {
        db.table_mut("fact")
            .unwrap()
            .push_row(vec![
                Value::Int(*id + i as i64 * 100), // unique ids
                Value::Str(groups[*grp as usize]),
                Value::Int(*key),
                Value::Int(*x),
            ])
            .unwrap();
    }
    for (key, y) in &db_spec.dim {
        db.table_mut("dim")
            .unwrap()
            .push_row(vec![Value::Int(*key), Value::Int(*y)])
            .unwrap();
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// COUNT(*) per group via the hash executor equals a nested-loop count.
    #[test]
    fn join_count_matches_nested_loop_reference(spec in arb_db()) {
        let db = build(&spec);
        let q = parse_sql(
            "SELECT COUNT(*) AS c, grp FROM fact f, dim d WHERE f.key = d.key GROUP BY grp",
        ).unwrap();
        let r = cajade::query::execute(&db, &q).unwrap();

        // Reference: nested loop over the spec.
        let mut expected = std::collections::BTreeMap::new();
        for (_, grp, key, _) in &spec.fact {
            for (dkey, _) in &spec.dim {
                if key == dkey {
                    *expected.entry(*grp).or_insert(0i64) += 1;
                }
            }
        }
        let names = ["a", "b", "c"];
        let c_idx = r.table.schema().field_index("c").unwrap();
        for (grp, count) in expected {
            let row = r.find_row(&db, &[("grp", names[grp as usize])])
                .expect("group present in output");
            prop_assert_eq!(r.table.value(row, c_idx), Value::Int(count));
        }
        // No spurious groups either.
        let expected_groups = {
            let mut set = std::collections::BTreeSet::new();
            for (_, grp, key, _) in &spec.fact {
                if spec.dim.iter().any(|(dk, _)| dk == key) {
                    set.insert(*grp);
                }
            }
            set
        };
        prop_assert_eq!(r.num_rows(), expected_groups.len());
    }

    /// Provenance partitions the joined rows: group sizes sum to |PT|.
    #[test]
    fn provenance_partitions(spec in arb_db()) {
        let db = build(&spec);
        let q = parse_sql(
            "SELECT COUNT(*) AS c, grp FROM fact f, dim d WHERE f.key = d.key GROUP BY grp",
        ).unwrap();
        let pt = ProvenanceTable::compute(&db, &q).unwrap();
        let total: usize = (0..pt.num_groups()).map(|g| pt.group_size(g)).sum();
        prop_assert_eq!(total, pt.num_rows);
    }

    /// Scorer invariants on arbitrary threshold patterns: tp ≤ a1,
    /// fp ≤ a2, metrics in [0,1], and refinement never increases recall.
    #[test]
    fn metric_invariants(spec in arb_db(), thr in -20i64..20, thr2 in -20i64..20) {
        let db = build(&spec);
        let q = parse_sql("SELECT COUNT(*) AS c, grp FROM fact GROUP BY grp").unwrap();
        let pt = ProvenanceTable::compute(&db, &q).unwrap();
        prop_assume!(pt.num_groups() >= 2);
        let apt = Apt::materialize(&db, &pt, &JoinGraph::pt_only()).unwrap();
        let x = apt.field_index("prov_fact_x").unwrap();
        let key = apt.field_index("prov_fact_key").unwrap();
        let scorer = Scorer::exact(&apt, &pt);

        let base = Pattern::from_preds(vec![(x, Pred { op: PredOp::Le, value: PatValue::Int(thr) })]);
        let refined = base.refine(key, Pred { op: PredOp::Ge, value: PatValue::Int(thr2.rem_euclid(8)) });
        for t in 0..pt.num_groups() {
            let s = (t + 1) % pt.num_groups();
            let m = scorer.score(&base, t, Some(s));
            prop_assert!(m.tp <= m.a1);
            prop_assert!(m.fp <= m.a2);
            prop_assert!((0.0..=1.0).contains(&m.precision));
            prop_assert!((0.0..=1.0).contains(&m.recall));
            prop_assert!((0.0..=1.0).contains(&m.f_score));
            let mr = scorer.score(&refined, t, Some(s));
            prop_assert!(mr.recall <= m.recall + 1e-12, "Prop 3.1 violated");
        }
    }

    /// APT fan-out never under-covers: every matching PT row is counted
    /// exactly once regardless of how many dim rows extend it.
    #[test]
    fn coverage_counts_pt_rows_once(spec in arb_db()) {
        let db = build(&spec);
        let q = parse_sql("SELECT COUNT(*) AS c, grp FROM fact GROUP BY grp").unwrap();
        let pt = ProvenanceTable::compute(&db, &q).unwrap();
        prop_assume!(pt.num_groups() >= 1);
        // Join PT — dim on key (may fan out or drop rows).
        let mut g = JoinGraph::pt_only();
        g.nodes.push(cajade::graph::JgNode {
            label: cajade::graph::NodeLabel::Rel("dim".into()),
        });
        g.edges.push(cajade::graph::JgEdge {
            from: 0,
            to: 1,
            cond: cajade::graph::JoinCond::on(&[("key", "key")]),
            schema_edge: 0,
            cond_idx: 0,
            pt_from_idx: Some(0),
        });
        let apt = Apt::materialize(&db, &pt, &g).unwrap();
        let scorer = Scorer::exact(&apt, &pt);
        let m = scorer.score(&Pattern::empty(), 0, None);
        // TP = distinct PT rows of group 0 with ≥1 dim match.
        let key_f = pt.field_index("prov_fact_key").unwrap();
        let expected: usize = pt.rows_of_group[0]
            .iter()
            .filter(|&&r| {
                let k = pt.value(r as usize, key_f);
                spec.dim.iter().any(|(dk, _)| Value::Int(*dk).sql_eq(&k))
            })
            .count();
        prop_assert_eq!(m.tp, expected);
        prop_assert_eq!(m.a1, pt.group_size(0));
    }
}
