//! The serve-protocol CSV-ingestion round trip over the committed fixture
//! directory: `register` (source csv_dir) → `query` → `ask` → `stats`,
//! all through `protocol::handle_line` — the exact JSON-lines exchanges
//! the `cajade-serve` binary speaks. (The sibling test in
//! `crates/service/tests` drives the real binary over pipes; this one
//! keeps the same flow under the facade's tier-1 `cargo test` gate.)

use cajade::service::json::Json;
use cajade::service::{protocol, ExplanationService};

fn fixture_dir() -> String {
    format!("{}/tests/data/retail_csv", env!("CARGO_MANIFEST_DIR"))
}

fn ok(resp: &Json) -> bool {
    resp.get("ok").and_then(Json::as_bool) == Some(true)
}

#[test]
fn register_csv_dir_query_ask_round_trip() {
    let service = ExplanationService::default();

    // -- register ------------------------------------------------------
    let register = format!(
        r#"{{"op":"register","db":"retail","source":"csv_dir","path":"{}"}}"#,
        fixture_dir()
    );
    let r = protocol::handle_line(&service, &register);
    assert!(ok(&r), "{r:?}");
    assert_eq!(r.get("tables").and_then(Json::as_u64), Some(2));
    assert_eq!(r.get("rows").and_then(Json::as_u64), Some(605));
    let ingest = r.get("ingest").expect("ingest report");
    assert_eq!(
        ingest.get("manifest_used").and_then(Json::as_bool),
        Some(true)
    );
    // The store FK is discovered, not pinned, and comes with evidence.
    let joins = ingest.get("joins").and_then(Json::as_array).unwrap();
    let store_join = joins
        .iter()
        .find(|j| {
            j.get("condition").and_then(Json::as_str) == Some("sales.store_id = stores.store_id")
        })
        .expect("discovered store join");
    assert_eq!(
        store_join.get("origin").and_then(Json::as_str),
        Some("discovered")
    );
    assert!(
        store_join
            .get("containment")
            .and_then(Json::as_f64)
            .unwrap()
            > 0.99
    );
    // Pinned keys made it into the per-table reports.
    let tables = ingest.get("tables").and_then(Json::as_array).unwrap();
    assert!(tables
        .iter()
        .all(|t| t.get("key_pinned").and_then(Json::as_bool).unwrap()));
    // All four stages report a timing.
    let timings = ingest.get("timings_ms").expect("timings");
    for stage in ["scan", "infer", "load", "discover", "total"] {
        assert!(
            timings.get(stage).and_then(Json::as_f64).is_some(),
            "{stage}"
        );
    }

    // Re-registering the unchanged directory keeps the epoch.
    let r2 = protocol::handle_line(&service, &register);
    assert!(ok(&r2), "{r2:?}");
    assert_eq!(r2.get("replaced").and_then(Json::as_bool), Some(false));
    assert_eq!(
        r.get("epoch").and_then(Json::as_u64),
        r2.get("epoch").and_then(Json::as_u64)
    );

    // -- query ---------------------------------------------------------
    let q = protocol::handle_line(
        &service,
        r#"{"op":"query","db":"retail","sql":"SELECT AVG(amount) AS avg_amount, channel FROM sales GROUP BY channel"}"#,
    );
    assert!(ok(&q), "{q:?}");
    let session = q.get("session").and_then(Json::as_u64).unwrap();
    assert_eq!(q.get("rows").and_then(Json::as_array).unwrap().len(), 2);

    // -- ask -----------------------------------------------------------
    let a = protocol::handle_line(
        &service,
        &format!(
            r#"{{"op":"ask","session":{session},"t1":{{"channel":"online"}},"t2":{{"channel":"in_person"}}}}"#
        ),
    );
    assert!(ok(&a), "{a:?}");
    let explanations = a.get("explanations").and_then(Json::as_array).unwrap();
    assert!(
        !explanations.is_empty(),
        "ingested fixture yields ranked explanations"
    );
    // The planted story: urban stores sell online. At least one
    // explanation should reach through the discovered join into the
    // stores table.
    assert!(
        explanations.iter().any(|e| {
            e.get("join_graph")
                .and_then(Json::as_str)
                .is_some_and(|g| g.contains("stores"))
        }),
        "{explanations:?}"
    );

    // -- stats ---------------------------------------------------------
    let s = protocol::handle_line(&service, r#"{"op":"stats"}"#);
    assert!(ok(&s), "{s:?}");
    let ingest_stats = s.get("ingest").expect("ingest stats");
    assert_eq!(ingest_stats.get("ingests").and_then(Json::as_u64), Some(2));
    assert_eq!(
        ingest_stats.get("rows").and_then(Json::as_u64),
        Some(1210),
        "two ingests of 605 rows"
    );
    assert_eq!(
        ingest_stats.get("joins_discovered").and_then(Json::as_u64),
        Some(2)
    );
}

#[test]
fn register_csv_dir_bad_path_and_bad_source() {
    let service = ExplanationService::default();
    let r = protocol::handle_line(
        &service,
        r#"{"op":"register","db":"x","source":"csv_dir","path":"/nonexistent/cajade"}"#,
    );
    assert_eq!(r.get("ok").and_then(Json::as_bool), Some(false));
    let e = r.get("error").expect("error object");
    assert_eq!(e.get("code").and_then(Json::as_str), Some("ingest"));
    assert!(e
        .get("message")
        .and_then(Json::as_str)
        .unwrap()
        .contains("/nonexistent/cajade"));

    let r = protocol::handle_line(
        &service,
        r#"{"op":"register","db":"x","source":"wat","path":"y"}"#,
    );
    assert_eq!(r.get("ok").and_then(Json::as_bool), Some(false));
    let e = r.get("error").expect("error object");
    assert_eq!(e.get("code").and_then(Json::as_str), Some("bad_request"));
    assert!(e
        .get("message")
        .and_then(Json::as_str)
        .unwrap()
        .contains("csv_dir"));
}
