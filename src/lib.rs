//! # cajade — facade crate
//!
//! A from-scratch Rust reproduction of **CaJaDE** (Context-Aware
//! Join-Augmented Deep Explanations) from *"Putting Things into Context:
//! Rich Explanations for Query Answers using Join Graphs"* (SIGMOD 2021).
//!
//! This crate re-exports the whole workspace behind one dependency:
//!
//! * [`storage`] — in-memory columnar relational store,
//! * [`query`] — SPJA executor, SQL parser, why-provenance,
//! * [`graph`] — schema graphs, join-graph enumeration, APTs,
//! * [`ml`] — random forests, attribute clustering, samplers,
//! * [`mining`] — summarization-pattern mining (Algorithm 1),
//! * [`metrics`] — NDCG / Kendall-tau ranking metrics,
//! * [`ingest`] — CSV-directory ingestion: type/key inference,
//!   manifests, auto-discovered schema graphs,
//! * [`datagen`] — synthetic NBA and MIMIC datasets,
//! * [`baselines`] — Explanation Tables, CAPE, provenance-only,
//! * [`core`] — the end-to-end [`core::ExplanationSession`],
//! * [`service`] — the interactive explanation service: session
//!   registry, provenance/APT/answer caches, and the `cajade-serve`
//!   JSON-lines binary.
//!
//! ## Quickstart
//!
//! ```
//! use cajade::prelude::*;
//!
//! // Tiny NBA database with the paper's planted story.
//! let nba = cajade::datagen::nba::generate(NbaConfig::tiny());
//! let query = parse_sql(
//!     "SELECT count(*) AS win, s.season_name FROM team t, game g, season s \
//!      WHERE t.team_id = g.winner_id AND g.season_id = s.season_id \
//!        AND t.team = 'GSW' GROUP BY s.season_name",
//! ).unwrap();
//!
//! let session = ExplanationSession::new(&nba.db, &nba.schema_graph, Params::fast());
//! let result = session
//!     .explain_between(&query, &[("season_name", "2015-16")], &[("season_name", "2012-13")])
//!     .unwrap();
//! assert!(!result.explanations.is_empty());
//! ```

pub use cajade_baselines as baselines;
pub use cajade_core as core;
pub use cajade_datagen as datagen;
pub use cajade_graph as graph;
pub use cajade_ingest as ingest;
pub use cajade_metrics as metrics;
pub use cajade_mining as mining;
pub use cajade_ml as ml;
pub use cajade_query as query;
pub use cajade_service as service;
pub use cajade_storage as storage;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use cajade_core::{ExplanationSession, Params, SelAttr, UserQuestion};
    pub use cajade_datagen::mimic::MimicConfig;
    pub use cajade_datagen::nba::NbaConfig;
    pub use cajade_graph::{JoinGraph, SchemaGraph};
    pub use cajade_ingest::{ingest_dir, IngestOptions};
    pub use cajade_mining::Pattern;
    pub use cajade_query::{parse_sql, Query};
    pub use cajade_service::{ExplanationService, ServiceConfig, SessionHandle};
    pub use cajade_storage::{AttrKind, DataType, Database, Value};
}
