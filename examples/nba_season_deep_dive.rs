//! NBA case study (paper §6.1): Draymond Green's scoring drop and
//! LeBron James' team switch, with case-study parameters (wider attribute
//! budget, top-20 list) and the full runtime breakdown.
//!
//! Run with: `cargo run --release --example nba_season_deep_dive`

use cajade::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let nba = cajade::datagen::nba::generate(NbaConfig {
        rich_stats: true,
        ..NbaConfig::tiny()
    });

    let mut params = Params::case_study();
    params.max_edges = 2; // keep the example brisk
    params.mining.lambda_pat_samp = 1.0;
    params.mining.lambda_f1_samp = 1.0;
    let session = ExplanationSession::new(&nba.db, &nba.schema_graph, params);

    // ---- Q_nba1: Draymond Green's average points per season. -----------
    let q_green = parse_sql(
        "SELECT AVG(points) AS avg_pts, s.season_name \
         FROM player p, player_game_stats pgs, game g, season s \
         WHERE p.player_id = pgs.player_id AND g.game_date = pgs.game_date \
           AND g.home_id = pgs.home_id AND s.season_id = g.season_id \
           AND p.player_name = 'Draymond Green' \
         GROUP BY s.season_name",
    )?;
    let r = cajade::query::execute(&nba.db, &q_green)?;
    println!(
        "Q_nba1 — Draymond Green avg points per season:\n{}",
        r.render(&nba.db)
    );

    println!("UQ: why 2015-16 (t1) vs 2016-17 (t2)?");
    let outcome = session.explain_between(
        &q_green,
        &[("season_name", "2015-16")],
        &[("season_name", "2016-17")],
    )?;
    for (i, e) in outcome.explanations.iter().take(10).enumerate() {
        println!("  {:>2}. {}", i + 1, e.render_line());
    }
    println!(
        "\n({} graphs mined, {} patterns evaluated)\n{}",
        outcome.num_graphs_mined,
        outcome.patterns_evaluated,
        outcome.timings.render()
    );

    // ---- Q_nba3: LeBron James' average points per season. --------------
    let q_lebron = parse_sql(
        "SELECT AVG(points) AS avg_pts, s.season_name \
         FROM player p, player_game_stats pgs, game g, season s \
         WHERE p.player_id = pgs.player_id AND g.game_date = pgs.game_date \
           AND g.home_id = pgs.home_id AND s.season_id = g.season_id \
           AND p.player_name = 'LeBron James' \
         GROUP BY s.season_name",
    )?;
    println!("\nQ_nba3 — LeBron James: why 2009-10 (t1) vs 2010-11 (t2)?");
    let outcome = session.explain_between(
        &q_lebron,
        &[("season_name", "2009-10")],
        &[("season_name", "2010-11")],
    )?;
    for (i, e) in outcome.explanations.iter().take(10).enumerate() {
        println!("  {:>2}. {}", i + 1, e.render_line());
    }
    println!("\njoin graphs and APT sizes (Fig. 10a style):");
    for (structure, rows, cols) in outcome.apt_stats.iter().take(8) {
        println!("  {structure:<50} {rows:>8} rows  {cols:>3} attrs");
    }
    Ok(())
}
