//! A tiny SQL REPL over the synthetic NBA database — demonstrates the
//! query substrate on its own (parser + executor + provenance counts).
//!
//! Run with: `cargo run --release --example sql_repl`
//! then type single-block aggregate SQL, e.g.:
//!
//! ```sql
//! SELECT COUNT(*) AS win, s.season_name FROM team t, game g, season s
//! WHERE t.team_id = g.winner_id AND g.season_id = s.season_id
//!   AND t.team = 'GSW' GROUP BY s.season_name
//! ```
//!
//! Commands: `\tables`, `\schema <table>`, `\quit`.

use std::io::{BufRead, Write};

use cajade::prelude::*;
use cajade::query::ProvenanceTable;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let nba = cajade::datagen::nba::generate(NbaConfig::tiny());
    println!(
        "NBA database loaded ({} tables, {} rows). Type \\tables, \\schema <t>, \\quit.",
        nba.db.tables().len(),
        nba.db.total_rows()
    );

    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        print!("sql> ");
        out.flush()?;
        let mut line = String::new();
        if stdin.lock().read_line(&mut line)? == 0 {
            break; // EOF
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == "\\quit" || line == "\\q" {
            break;
        }
        if line == "\\tables" {
            for t in nba.db.tables() {
                println!("  {} ({} rows)", t.name(), t.num_rows());
            }
            continue;
        }
        if let Some(name) = line.strip_prefix("\\schema ") {
            match nba.db.table(name.trim()) {
                Ok(t) => {
                    for f in &t.schema().fields {
                        println!(
                            "  {:<28} {:<6} {:?}{}",
                            f.name,
                            f.dtype.name(),
                            f.kind,
                            if f.is_pk { "  PK" } else { "" }
                        );
                    }
                }
                Err(e) => println!("error: {e}"),
            }
            continue;
        }

        match parse_sql(line) {
            Ok(query) => match cajade::query::execute(&nba.db, &query) {
                Ok(result) => {
                    print!("{}", result.render(&nba.db));
                    if let Ok(pt) = ProvenanceTable::compute(&nba.db, &query) {
                        println!(
                            "({} output tuples, provenance: {} rows × {} attrs)",
                            result.num_rows(),
                            pt.num_rows,
                            pt.fields.len()
                        );
                    }
                }
                Err(e) => println!("execution error: {e}"),
            },
            Err(e) => println!("parse error: {e}"),
        }
    }
    Ok(())
}
