//! Baseline comparison (paper §5.5 / §5.6): the same user question handled
//! by CaJaDE, Explanation Tables, CAPE, and provenance-only mining.
//!
//! Run with: `cargo run --release --example baseline_comparison`

use cajade::baselines::{
    explain_outlier, provenance_only_explanations, CapeQuestion, Direction, EtConfig,
    ExplanationTables,
};
use cajade::graph::{Apt, JoinGraph};
use cajade::mining::Question;
use cajade::prelude::*;
use cajade::query::ProvenanceTable;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let nba = cajade::datagen::nba::generate(NbaConfig::tiny());
    let query = parse_sql(
        "SELECT COUNT(*) AS win, s.season_name \
         FROM team t, game g, season s \
         WHERE t.team_id = g.winner_id AND g.season_id = s.season_id \
           AND t.team = 'GSW' \
         GROUP BY s.season_name",
    )?;
    let result = cajade::query::execute(&nba.db, &query)?;
    let pt = ProvenanceTable::compute(&nba.db, &query)?;
    let t1 = pt
        .find_group(&nba.db, &query, &[("season_name", "2015-16")])
        .expect("t1");
    let t2 = pt
        .find_group(&nba.db, &query, &[("season_name", "2012-13")])
        .expect("t2");

    // ---- 1. CaJaDE (context-aware). -------------------------------------
    println!("=== CaJaDE (join-augmented) ===");
    let session = ExplanationSession::new(&nba.db, &nba.schema_graph, Params::fast());
    let outcome = session.explain_between(
        &query,
        &[("season_name", "2015-16")],
        &[("season_name", "2012-13")],
    )?;
    for e in outcome.explanations.iter().take(5) {
        println!("  {}", e.render_line());
    }

    // ---- 2. Provenance-only (the user-study baseline arm). --------------
    println!("\n=== Provenance-only (PT attributes only) ===");
    let mut params = Params::fast().mining;
    params.sel_attr = cajade::mining::SelAttr::Count(5);
    let (expl, apt) =
        provenance_only_explanations(&nba.db, &pt, &Question::TwoPoint { t1, t2 }, &params)?;
    for e in expl.iter().take(5) {
        println!(
            "  {} {} F={:.2}",
            e.pattern.render(&apt, nba.db.pool()),
            e.metrics.support_string(),
            e.metrics.f_score
        );
    }

    // ---- 3. Explanation Tables on the PT (binary outcome = "t1 row"). ---
    println!("\n=== Explanation Tables (Gebaly et al.) ===");
    let apt0 = Apt::materialize(&nba.db, &pt, &JoinGraph::pt_only())?;
    let outcome_col: Vec<bool> = (0..apt0.num_rows)
        .map(|r| pt.group_of[apt0.pt_row[r] as usize] as usize == t1)
        .collect();
    let cfg = EtConfig {
        sample_size: 64,
        num_patterns: 5,
        ..Default::default()
    };
    let et = ExplanationTables::fit(&apt0, &outcome_col, &cfg);
    for (p, desc) in et
        .patterns
        .iter()
        .zip(et.render(&apt0, nba.db.pool(), &cfg))
    {
        println!(
            "  {desc}  (support {}, rate {:.2})",
            p.support, p.outcome_rate
        );
    }

    // ---- 4. CAPE (counterbalances). --------------------------------------
    println!("\n=== CAPE (counterbalancing outliers) ===");
    let row = result
        .find_row(&nba.db, &[("season_name", "2015-16")])
        .expect("2015-16 in output");
    let cape = explain_outlier(
        &nba.db,
        &result,
        "win",
        &CapeQuestion {
            row,
            direction: Direction::High,
        },
        3,
    );
    for c in cape {
        println!(
            "  counterbalance {} (residual {:+.1})",
            c.rendered, c.residual
        );
    }
    println!(
        "\nCAPE answers a different question — it finds seasons that are \
         surprisingly LOW\nagainst the trend, not the context that made \
         2015-16 high (the paper's §5.6 point)."
    );
    Ok(())
}
