//! MIMIC case study (paper §6.2, Example 6 / Q_mimi4): why do patients
//! with Medicare insurance die at more than twice the rate of patients
//! with Private insurance?
//!
//! Run with: `cargo run --release --example mimic_insurance`

use cajade::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mimic = cajade::datagen::mimic::generate(MimicConfig {
        admissions: 3000,
        ..MimicConfig::tiny()
    });
    println!(
        "generated MIMIC database: {} tables, {} rows total\n",
        mimic.db.tables().len(),
        mimic.db.total_rows()
    );

    // Q_mimi4: death rate by insurance.
    let query = parse_sql(
        "SELECT insurance, 1.0*SUM(hospital_expire_flag)/COUNT(*) AS death_rate \
         FROM admissions GROUP BY insurance",
    )?;
    let r = cajade::query::execute(&mimic.db, &query)?;
    println!("death rate by insurance:\n{}", r.render(&mimic.db));

    let mut params = Params::case_study();
    params.max_edges = 2;
    params.mining.lambda_pat_samp = 1.0;
    let session = ExplanationSession::new(&mimic.db, &mimic.schema_graph, params);

    println!("UQ2: why Medicare (t1, ~14%) vs Private (t2, ~6%)?\n");
    let outcome = session.explain_between(
        &query,
        &[("insurance", "Medicare")],
        &[("insurance", "Private")],
    )?;
    for (i, e) in outcome.explanations.iter().take(10).enumerate() {
        println!("  {:>2}. {}", i + 1, e.render_line());
    }
    println!(
        "\nThe top explanations should surface the planted context: more \
         emergency admissions,\nolder patients (age ≥ 65 ⇒ Medicare), and \
         expire_flag/stay-length correlations —\nthe Table-6 shape."
    );
    println!("\nruntime breakdown:\n{}", outcome.timings.render());
    Ok(())
}
