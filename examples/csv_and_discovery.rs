//! Bring-your-own-data workflow: load tables from CSV, let join discovery
//! propose the schema graph (no foreign keys declared), and explain a
//! query result — the §8 "automatically find datasets to be used as
//! context" direction end to end.
//!
//! Run with: `cargo run --release --example csv_and_discovery`

use cajade::graph::{discovered_schema_graph, DiscoveryConfig};
use cajade::prelude::*;
use cajade::storage::{read_csv, SchemaBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- 1. "User-provided" CSV data (generated inline for the demo). --
    let stores_csv = "\
store_id,city,segment
101,Springfield,urban
102,Shelbyville,suburban
103,Ogdenville,urban
104,North Haverbrook,rural
105,Capital City,urban
";
    let mut sales_csv = String::from("sale_id,store_id,channel,amount\n");
    // Urban stores sell mostly online; rural/suburban mostly in person.
    // Online sales are larger. This is the planted context for the demo.
    for i in 0..600 {
        let store = 101 + (i % 5);
        let urban = matches!(store, 101 | 103 | 105);
        let online = if urban { i % 4 != 0 } else { i % 4 == 0 };
        let channel = if online { "online" } else { "in_person" };
        let amount = if online {
            220 + (i % 60)
        } else {
            90 + (i % 40)
        };
        sales_csv.push_str(&format!("{i},{store},{channel},{amount}\n"));
    }

    // ---- 2. Load into the storage engine with declared kinds/keys. -----
    let mut db = Database::new("retail");
    let stores_schema = SchemaBuilder::new("stores")
        .column_pk("store_id", DataType::Int, AttrKind::Categorical)
        .column("city", DataType::Str, AttrKind::Categorical)
        .column("segment", DataType::Str, AttrKind::Categorical)
        .build();
    let sales_schema = SchemaBuilder::new("sales")
        .column_pk("sale_id", DataType::Int, AttrKind::Categorical)
        .column("store_id", DataType::Int, AttrKind::Categorical)
        .column("channel", DataType::Str, AttrKind::Categorical)
        .column("amount", DataType::Int, AttrKind::Numeric)
        .build();
    let stores = read_csv(stores_schema, db.pool_mut(), stores_csv.as_bytes())?;
    let sales = read_csv(sales_schema, db.pool_mut(), sales_csv.as_bytes())?;
    db.insert_table(stores)?;
    db.insert_table(sales)?;
    println!(
        "loaded {} stores, {} sales from CSV (no foreign keys declared)",
        db.table("stores")?.num_rows(),
        db.table("sales")?.num_rows()
    );

    // ---- 3. Join discovery proposes the schema graph from the data. ----
    let schema_graph = discovered_schema_graph(&db, &DiscoveryConfig::default(), 4)?;
    println!("\ndiscovered join conditions:");
    for e in schema_graph.edges() {
        for c in &e.conds {
            println!("  {}", c.render(&e.a, &e.b));
        }
    }

    // ---- 4. Query + question + explanations. ---------------------------
    let query = parse_sql("SELECT AVG(amount) AS avg_amount, channel FROM sales GROUP BY channel")?;
    let result = cajade::query::execute(&db, &query)?;
    println!("\naverage sale amount by channel:\n{}", result.render(&db));

    let mut params = Params::fast().with_fd_exclusion(true);
    params.mining.sel_attr = SelAttr::All;
    let session = ExplanationSession::new(&db, &schema_graph, params);
    let outcome = session.explain_between(
        &query,
        &[("channel", "online")],
        &[("channel", "in_person")],
    )?;

    println!("why are online sales larger than in-person sales?");
    for (i, e) in outcome.explanations.iter().take(5).enumerate() {
        println!("  {:>2}. {}", i + 1, e.render_line());
    }
    if let Some(best) = outcome.explanations.iter().find(|e| !e.from_pt_only) {
        println!("\nnarrative: {}", best.narrate("sale amounts"));
    }
    Ok(())
}
