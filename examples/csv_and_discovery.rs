//! Bring-your-own-data quickstart: drop CSV files in a directory, point
//! [`cajade::ingest`] at it, and explain a query result — no
//! hand-written schema, no declared foreign keys. Ingestion infers
//! column types and keys, a containment scan discovers the join graph,
//! and the explanation pipeline does the rest (the paper's §8
//! "automatically find datasets to be used as context" direction, end to
//! end).
//!
//! Run with: `cargo run --release --example csv_and_discovery`

use cajade::core::ExplanationSession;
use cajade::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- 1. A "user-provided" CSV directory (generated for the demo). --
    // Urban stores sell mostly online; rural/suburban mostly in person.
    // Online sales are larger. That correlation — reachable only through
    // a join ingestion must discover by itself — is the planted context.
    let dir = std::env::temp_dir().join(format!("cajade_quickstart_{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    let stores_csv = "\
store_id,city,segment
101,Springfield,urban
102,Shelbyville,suburban
103,Ogdenville,urban
104,North Haverbrook,rural
105,Capital City,urban
";
    let mut sales_csv = String::from("sale_id,store_id,channel,amount\n");
    for i in 0..600 {
        let store = 101 + (i % 5);
        let urban = matches!(store, 101 | 103 | 105);
        let online = if urban { i % 4 != 0 } else { i % 4 == 0 };
        let channel = if online { "online" } else { "in_person" };
        let amount = if online {
            220 + (i % 60)
        } else {
            90 + (i % 40)
        };
        sales_csv.push_str(&format!("{i},{store},{channel},{amount}\n"));
    }
    std::fs::write(dir.join("stores.csv"), stores_csv)?;
    std::fs::write(dir.join("sales.csv"), sales_csv)?;

    // ---- 2. Ingest: schema inference + join discovery, zero config. ----
    let ingested = ingest_dir(&dir, &IngestOptions::default())?;
    print!("{}", ingested.report.render());
    for t in ingested.db.tables() {
        let fields: Vec<String> = t
            .schema()
            .fields
            .iter()
            .map(|f| {
                format!(
                    "{}: {:?} {:?}{}",
                    f.name,
                    f.dtype,
                    f.kind,
                    if f.is_pk { " pk" } else { "" }
                )
            })
            .collect();
        println!("inferred schema {}({})", t.name(), fields.join(", "));
    }

    // ---- 3. Query + question + explanations. ---------------------------
    let query = parse_sql("SELECT AVG(amount) AS avg_amount, channel FROM sales GROUP BY channel")?;
    let result = cajade::query::execute(&ingested.db, &query)?;
    println!(
        "\naverage sale amount by channel:\n{}",
        result.render(&ingested.db)
    );

    let mut params = Params::fast().with_fd_exclusion(true);
    params.mining.sel_attr = SelAttr::All;
    let session = ExplanationSession::new(&ingested.db, &ingested.schema_graph, params);
    let outcome = session.explain_between(
        &query,
        &[("channel", "online")],
        &[("channel", "in_person")],
    )?;

    println!("why are online sales larger than in-person sales?");
    for (i, e) in outcome.explanations.iter().take(5).enumerate() {
        println!("  {:>2}. {}", i + 1, e.render_line());
    }
    assert!(
        !outcome.explanations.is_empty(),
        "ingested data must yield ranked explanations"
    );
    if let Some(best) = outcome.explanations.iter().find(|e| !e.from_pt_only) {
        println!("\nnarrative: {}", best.narrate("sale amounts"));
    }
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
