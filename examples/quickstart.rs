//! Quickstart: the paper's running example (Example 1 / UQ1).
//!
//! "Why did GSW win 73 games in season 2015-16 compared to 47 games in
//! 2012-13?" — generate the synthetic NBA database, run the win-count
//! query, and ask CaJaDE for context-aware explanations.
//!
//! Run with: `cargo run --release --example quickstart`

use cajade::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A small synthetic NBA database with the paper's planted story.
    let nba = cajade::datagen::nba::generate(NbaConfig::tiny());
    println!(
        "generated NBA database: {} tables, {} rows total\n",
        nba.db.tables().len(),
        nba.db.total_rows()
    );

    // 2. The user's query: GSW wins per season (paper query Q1 / Q'1).
    let query = parse_sql(
        "SELECT COUNT(*) AS win, s.season_name \
         FROM team t, game g, season s \
         WHERE t.team_id = g.winner_id AND g.season_id = s.season_id \
           AND t.team = 'GSW' \
         GROUP BY s.season_name",
    )?;
    let result = cajade::query::execute(&nba.db, &query)?;
    println!("query result:\n{}", result.render(&nba.db));

    // 3. The user question UQ1: 2015-16 (t1) vs 2012-13 (t2).
    let session = ExplanationSession::new(&nba.db, &nba.schema_graph, Params::fast());
    let outcome = session.explain_between(
        &query,
        &[("season_name", "2015-16")],
        &[("season_name", "2012-13")],
    )?;

    println!(
        "enumerated {} join graphs, mined {} (PT has {} rows)\n",
        outcome.num_graphs_enumerated, outcome.num_graphs_mined, outcome.pt_rows
    );
    println!("top explanations:");
    for (i, e) in outcome.explanations.iter().take(8).enumerate() {
        println!("  {:>2}. {}", i + 1, e.render_line());
    }
    println!("\nruntime breakdown:\n{}", outcome.timings.render());
    Ok(())
}
